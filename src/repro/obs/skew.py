"""Hot-partition / hot-key skew detection.

ROADMAP item 1's sensing half: the auto-split controller needs to *know*
a partition is hot before it can act.  Two complementary signals:

* **Partition level** — per-partition ``<container>.<i>/ops`` counters
  (already maintained by every container) are read at each flight-recorder
  tick; per-tick deltas give instantaneous load shares, cumulative totals
  give the run-wide imbalance coefficient (max/mean) and coefficient of
  variation.  A partition whose per-tick share exceeds ``hot_factor`` x
  fair share raises an edge-triggered ``skew.hot_partition`` event.
* **Key level** — a deterministic space-saving heavy-hitter sketch
  (Metwally et al.'s *SpaceSaving*) fed key-by-key from the workload
  driver.  Capacity-bounded, no RNG, FIFO tie-breaking on eviction, so
  same-seed runs produce identical top-k tables; the guarantee that any
  key with true count > N/capacity is retained makes Zipf hot keys
  rank first with even small capacities.

Everything here is pure bookkeeping on the Python heap: no simulator
events, no RNG draws, no resource acquisition — a monitored run keeps
identical simulated results.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.registry import MetricsRegistry
from repro.simnet.trace import EventLog

__all__ = ["SpaceSavingSketch", "SkewDetector"]


class SpaceSavingSketch:
    """Deterministic space-saving heavy-hitter sketch.

    Tracks at most ``capacity`` keys; offering an untracked key when full
    evicts the minimum-count entry (FIFO among ties — the entry tracked
    longest goes first) and the newcomer inherits that count as its
    over-estimation ``error``.  For any key, ``count - error`` is a lower
    bound and ``count`` an upper bound on its true frequency.
    """

    def __init__(self, capacity: int = 64):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.offered = 0
        # key -> [count, error, seq]; seq is a monotonic tracking stamp
        # so eviction and top-k ordering are fully deterministic.
        self._entries: Dict[object, List[float]] = {}
        self._seq = 0

    def offer(self, key, inc: int = 1) -> None:
        self.offered += inc
        entry = self._entries.get(key)
        if entry is not None:
            entry[0] += inc
            return
        self._seq += 1
        if len(self._entries) < self.capacity:
            self._entries[key] = [inc, 0, self._seq]
            return
        victim_key = min(self._entries,
                         key=lambda k: (self._entries[k][0],
                                        self._entries[k][2]))
        floor = self._entries.pop(victim_key)[0]
        self._entries[key] = [floor + inc, floor, self._seq]

    def top(self, k: int = 10) -> List[Tuple[object, int, int]]:
        """The ``k`` heaviest tracked keys as ``(key, count, error)``.

        Ordered by count descending, oldest-tracked first on ties —
        a long-tracked exact count outranks a same-count newcomer whose
        total may be inherited error.
        """
        ranked = sorted(self._entries.items(),
                        key=lambda kv: (-kv[1][0], kv[1][2]))
        return [(key, int(c), int(e)) for key, (c, e, _s) in ranked[:k]]

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key) -> bool:
        return key in self._entries


class SkewDetector:
    """Per-partition load-share monitor + hot-key sketch.

    Parameters
    ----------
    registry:
        The simulation's metrics registry (op counters are read live).
    sources:
        ``(counter_name, node_id)`` pairs — one per monitored partition,
        e.g. ``("serving-map.3/ops", 3)``.  Harnesses build this from
        ``partition.ops.name`` / ``partition.node_id``.
    hot_factor:
        A partition is *hot* in a tick when its share of that tick's ops
        exceeds ``hot_factor / len(sources)`` (i.e. ``hot_factor`` x the
        fair share).  Edge-triggered ``skew.hot_partition`` /
        ``skew.cooled`` events go to ``event_log``.
    sketch_capacity:
        Heavy-hitter sketch size for :meth:`offer_key`.
    """

    def __init__(self, registry: MetricsRegistry,
                 sources: Sequence[Tuple[str, int]],
                 hot_factor: float = 2.0,
                 sketch_capacity: int = 64,
                 event_log: Optional[EventLog] = None,
                 top_k: int = 5):
        if hot_factor <= 1.0:
            raise ValueError("hot_factor must be > 1 (a fair-share multiple)")
        self.registry = registry
        self.sources = list(sources)
        self.hot_factor = hot_factor
        self.top_k = top_k
        self.events = event_log
        self.sketch = SpaceSavingSketch(sketch_capacity)
        self.ticks = 0
        self.hot_events = 0
        self._last: List[float] = [0.0] * len(self.sources)
        self._hot: set = set()

    # -- feeds ----------------------------------------------------------------
    def offer_key(self, key) -> None:
        """Feed one key access into the heavy-hitter sketch."""
        self.sketch.offer(key)

    def _read(self) -> List[float]:
        values = []
        for name, _node in self.sources:
            metric = self.registry.get(name)
            values.append(float(metric.value) if metric is not None else 0.0)
        return values

    def tick(self, now: float) -> None:
        """Per-sample hook: compute tick deltas, fire hot/cooled events."""
        self.ticks += 1
        values = self._read()
        deltas = [v - p for v, p in zip(values, self._last)]
        self._last = values
        total = sum(deltas)
        if total <= 0 or not self.sources:
            return
        hot_share = self.hot_factor / len(self.sources)
        for i, (name, node) in enumerate(self.sources):
            share = deltas[i] / total
            if share > hot_share:
                if i not in self._hot:
                    self._hot.add(i)
                    self.hot_events += 1
                    if self.events is not None:
                        self.events.log("skew.hot_partition", {
                            "partition": name,
                            "node": node,
                            "share": share,
                            "fair_share": 1.0 / len(self.sources),
                        })
            elif i in self._hot:
                self._hot.discard(i)
                if self.events is not None:
                    self.events.log("skew.cooled", {
                        "partition": name,
                        "node": node,
                        "share": share,
                    })

    # -- reporting ------------------------------------------------------------
    def summary(self) -> Dict:
        """Run-wide skew report (JSON-ready, deterministic ordering)."""
        values = self._read()
        total = sum(values)
        n = len(values)
        mean = total / n if n else 0.0
        if mean > 0:
            imbalance = max(values) / mean
            var = sum((v - mean) ** 2 for v in values) / n
            cv = var ** 0.5 / mean
        else:
            imbalance = 1.0
            cv = 0.0
        ranked = sorted(range(n),
                        key=lambda i: (-values[i], self.sources[i][0]))
        per_node: Dict[int, float] = {}
        for (name, node), v in zip(self.sources, values):
            per_node[node] = per_node.get(node, 0.0) + v
        return {
            "partitions": n,
            "total_ops": total,
            "imbalance": imbalance,
            "cv": cv,
            "hot_events": self.hot_events,
            "hot_now": sorted(self.sources[i][0] for i in self._hot),
            "top_partitions": [
                {
                    "partition": self.sources[i][0],
                    "node": self.sources[i][1],
                    "ops": values[i],
                    "share": values[i] / total if total else 0.0,
                }
                for i in ranked[:self.top_k]
            ],
            "node_ops": {str(node): per_node[node]
                         for node in sorted(per_node)},
            "top_keys": [
                {"key": str(key), "count": count, "error": error}
                for key, count, error in self.sketch.top(self.top_k)
            ],
            "keys_offered": self.sketch.offered,
        }
