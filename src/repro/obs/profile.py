"""Wall-clock attribution profiler: where does *wall* time (not sim time) go?

Every other layer in ``repro.obs`` observes the *simulated* timeline —
spans, flight-recorder series and critpath blame are all in sim seconds.
ROADMAP item 3's profile-first rule needs the other axis: which Python
code burns the host CPU while the DES retires events.  This module is
that tool, built entirely on stdlib :mod:`cProfile` so the hot paths are
**never instrumented**: a profiled run executes byte-for-byte the same
simulation code as an unprofiled one (cProfile only observes frame
entry/exit), which is what makes the two guarantees cheap to keep:

* profiling never changes simulated results (asserted in
  ``tests/test_obs_profile.py`` and CI's profile-smoke leg);
* profile-off runs are byte-identical to a tree without this module —
  there is no ``if profiling:`` branch anywhere in kernel/RPC/container
  code to get wrong.

Three views come out of one run:

* **per-subsystem wall shares** — every profiled function is classified
  by its file path into the architectural layers the paper's Table I
  talks about (``kernel``, ``fabric``, ``rpc``, ``marshal``,
  ``coalesce``, ``container``, ``observability``, ...), so "interpreter
  overhead in marshal" is a number, not a guess;
* **top-N functions** by self time (the classic profile table);
* **folded stacks** (``a;b;c <microseconds>`` lines) reconstructed from
  cProfile's caller graph, ready for any flame-graph renderer
  (e.g. ``flamegraph.pl`` or speedscope's folded importer).

:class:`WallScope` adds explicit named wall phases for harness-level
bracketing (setup vs run vs report); scopes are coarse by design and
never sit on per-event paths.

Exposed as ``--profile`` / ``--profile-out`` on the ``kernelbench``,
``aggbench``, ``serving`` and ``asyncbench`` CLI commands, and consumed
by :mod:`repro.obs.diff` for wall-share regression forensics.
"""

from __future__ import annotations

import cProfile
import json
import time
from contextlib import contextmanager
from typing import Dict, List, Optional, Tuple

__all__ = [
    "PROFILE_SCHEMA_KIND",
    "SUBSYSTEM_RULES",
    "WallProfiler",
    "WallScope",
    "classify_function",
    "render_profile",
    "validate_profile",
    "write_folded",
    "write_profile_json",
]

#: ``kind`` field stamped on every profile payload (artifact detection).
PROFILE_SCHEMA_KIND = "wall_profile"

#: Ordered (subsystem, path fragments) classification rules — first match
#: wins, so the more specific fragments come first.  Paths are matched
#: with ``/`` separators after normalization.
SUBSYSTEM_RULES: Tuple[Tuple[str, Tuple[str, ...]], ...] = (
    ("marshal", ("repro/serialization/",)),
    ("coalesce", ("repro/rpc/coalesce",)),
    ("rpc", ("repro/rpc/",)),
    ("fabric", ("repro/fabric/",)),
    ("observability", ("repro/obs/", "repro/simnet/trace",
                       "repro/simnet/stats")),
    ("kernel", ("repro/simnet/",)),
    ("container", ("repro/core/", "repro/bcl/", "repro/structures/")),
    ("memory", ("repro/memory/",)),
    ("app", ("repro/apps/",)),
    ("harness", ("repro/harness/", "repro/cli", "repro/config",
                 "benchmarks/")),
)

#: stdlib modules whose time is marshalling work in this codebase
_MARSHAL_STDLIB = ("/pickle.py", "/struct.py", "/json/", "/codecs.py")


def classify_function(filename: str, funcname: str = "") -> str:
    """Map one profiled function to a subsystem name.

    Anything inside the repo classifies by path; stdlib serialization
    helpers count as ``marshal``; every other non-repo frame (the
    interpreter, builtins, stdlib) is ``python`` — the honest bucket for
    pure interpreter overhead.
    """
    path = filename.replace("\\", "/")
    for subsystem, fragments in SUBSYSTEM_RULES:
        for fragment in fragments:
            if fragment in path:
                return subsystem
    if "repro/" in path:
        return "other"
    for fragment in _MARSHAL_STDLIB:
        if fragment in path:
            return "marshal"
    return "python"


def _short_file(filename: str) -> str:
    """Repo-relative (or basename) display path for one profiled file."""
    path = filename.replace("\\", "/")
    for anchor in ("repro/", "benchmarks/", "tests/"):
        idx = path.find(anchor)
        if idx >= 0:
            return path[idx:]
    if path in ("~", ""):
        return "~"
    return path.rsplit("/", 1)[-1]


def _label(func: Tuple[str, int, str]) -> str:
    """Compact ``file:func`` label for folded-stack frames."""
    filename, _lineno, name = func
    if filename in ("~", ""):
        return name  # e.g. "<built-in method builtins.len>"
    return f"{_short_file(filename)}:{name}"


class WallScope:
    """Explicit named wall-clock phase (harness-level bracketing).

    ``with WallScope("serving.run", profiler):`` accumulates elapsed wall
    seconds under the scope name; nested scopes record a ``;``-joined
    path as well, so coarse phases also show up in the folded output.
    Scopes are *not* meant for per-event hot loops — the cProfile side
    covers those with zero source changes.
    """

    __slots__ = ("name", "profiler", "_t0")

    def __init__(self, name: str, profiler: "WallProfiler"):
        self.name = name
        self.profiler = profiler
        self._t0 = 0.0

    def __enter__(self) -> "WallScope":
        self.profiler._scope_stack.append(self.name)
        self._t0 = self.profiler.clock()
        return self

    def __exit__(self, *exc) -> None:
        elapsed = self.profiler.clock() - self._t0
        stack = self.profiler._scope_stack
        path = ";".join(stack)
        stack.pop()
        self.profiler._record_scope(self.name, path, elapsed)


class WallProfiler:
    """One profiled measurement window (cProfile + explicit scopes)."""

    def __init__(self, clock=time.perf_counter):
        self.clock = clock
        self._prof = cProfile.Profile(timer=clock)
        self._scopes: Dict[str, Dict[str, float]] = {}
        self._scope_stack: List[str] = []
        self._wall = 0.0
        self._runs = 0

    # -- collection -----------------------------------------------------------
    @contextmanager
    def profile(self):
        """Profile the enclosed block (re-enterable; windows accumulate)."""
        t0 = self.clock()
        self._prof.enable()
        try:
            yield self
        finally:
            self._prof.disable()
            self._wall += self.clock() - t0
            self._runs += 1

    def scope(self, name: str) -> WallScope:
        """An explicit named wall phase (usable inside or outside profile())."""
        return WallScope(name, self)

    def _record_scope(self, name: str, path: str, elapsed: float) -> None:
        for key in {name, path}:
            row = self._scopes.setdefault(key, {"wall_seconds": 0.0,
                                                "count": 0})
            row["wall_seconds"] += elapsed
            row["count"] += 1

    # -- reporting ------------------------------------------------------------
    def report(self, top_n: int = 25, command: str = "",
               max_folded: int = 2000, max_depth: int = 32,
               min_folded_seconds: float = 1e-5) -> Dict:
        """JSON-ready payload: subsystem shares, top functions, folded stacks."""
        # Snapshot straight off cProfile: pstats.Stats() both raises on an
        # empty profile (a scopes-only run) and destructively clears the
        # profiler's accumulated stats, breaking repeated report() calls.
        self._prof.create_stats()
        stats = self._prof.stats  # {func: (cc,nc,tt,ct,callers)}
        total_self = sum(entry[2] for entry in stats.values())

        by_subsystem: Dict[str, Dict[str, float]] = {}
        functions: List[Dict] = []
        for func, (cc, nc, tt, ct, _callers) in stats.items():
            filename, lineno, name = func
            subsystem = classify_function(filename, name)
            row = by_subsystem.setdefault(
                subsystem, {"self_seconds": 0.0, "calls": 0})
            row["self_seconds"] += tt
            row["calls"] += nc
            functions.append({
                "name": name,
                "file": _short_file(filename),
                "line": lineno,
                "subsystem": subsystem,
                "calls": nc,
                "self_seconds": tt,
                "cum_seconds": ct,
            })
        functions.sort(key=lambda f: (-f["self_seconds"], f["file"],
                                      f["name"]))
        subsystems = [
            {
                "subsystem": sub,
                "self_seconds": row["self_seconds"],
                "calls": int(row["calls"]),
                "share": (row["self_seconds"] / total_self
                          if total_self > 0 else 0.0),
            }
            for sub, row in sorted(
                by_subsystem.items(),
                key=lambda kv: (-kv[1]["self_seconds"], kv[0]))
        ]
        return {
            "kind": PROFILE_SCHEMA_KIND,
            "command": command,
            "windows": self._runs,
            "wall_seconds": self._wall,
            "profiled_seconds": total_self,
            "subsystems": subsystems,
            "functions": functions[:max(0, top_n)],
            "functions_total": len(functions),
            "scopes": [
                {"name": name, **{k: row[k] for k in ("wall_seconds",
                                                      "count")}}
                for name, row in sorted(self._scopes.items())
            ],
            "folded": _folded_stacks(stats, max_lines=max_folded,
                                     max_depth=max_depth,
                                     min_seconds=min_folded_seconds),
        }


def _folded_stacks(stats: Dict, max_lines: int = 2000, max_depth: int = 32,
                   min_seconds: float = 1e-5) -> List[str]:
    """Approximate folded stacks from cProfile's caller graph.

    cProfile records per-edge cumulative time (callee -> {caller: ct}),
    not full stacks, so the call tree is reconstructed the way flameprof
    does: walk from root functions, splitting each callee's self time
    across incoming edges in proportion to edge cumulative time.  Exact
    for tree-shaped call graphs; proportional-split approximation when a
    function has several callers.  Lines are ``frame;frame;... <us>``
    with integer microsecond values, sorted for deterministic output.
    """
    children: Dict[Tuple, List[Tuple[Tuple, float]]] = {}
    total_in: Dict[Tuple, float] = {}
    for func, (_cc, _nc, _tt, _ct, callers) in stats.items():
        for caller, (_ccc, _cnc, _ctt, cct) in callers.items():
            children.setdefault(caller, []).append((func, cct))
            total_in[func] = total_in.get(func, 0.0) + cct

    out: Dict[str, float] = {}

    def walk(func: Tuple, fraction: float, path: Tuple[str, ...],
             visited: frozenset) -> None:
        entry = stats.get(func)
        if entry is None or fraction <= 0.0:
            return
        _cc, _nc, tt, ct, _callers = entry
        label = _label(func)
        new_path = path + (label,)
        self_t = tt * fraction
        if self_t >= min_seconds:
            key = ";".join(new_path)
            out[key] = out.get(key, 0.0) + self_t
        if len(new_path) >= max_depth or ct * fraction < min_seconds:
            return
        kids = children.get(func)
        if not kids:
            return
        new_visited = visited | {func}
        for child, edge_ct in sorted(kids, key=lambda kv: _label(kv[0])):
            if child in new_visited:
                continue  # recursion cycle: attribute at first visit only
            denom = total_in.get(child, 0.0)
            if denom <= 0.0 or edge_ct <= 0.0:
                continue
            walk(child, fraction * (edge_ct / denom), new_path, new_visited)

    roots = sorted((f for f, entry in stats.items() if not entry[4]),
                   key=_label)
    for root in roots:
        walk(root, 1.0, (), frozenset())

    lines = [f"{path} {int(round(seconds * 1e6))}"
             for path, seconds in sorted(out.items())
             if seconds * 1e6 >= 1.0]
    return lines[:max_lines]


# -- output -------------------------------------------------------------------

def render_profile(payload: Dict, top_n: int = 15) -> str:
    """Plain-text tables: subsystem wall shares + top self-time functions."""
    lines = [
        f"wall-clock profile ({payload.get('command') or 'run'}): "
        f"{payload.get('wall_seconds', 0.0):.3f} s wall, "
        f"{payload.get('profiled_seconds', 0.0):.3f} s profiled, "
        f"{payload.get('functions_total', 0)} functions",
        "  subsystem        self (s)   share",
    ]
    for row in payload.get("subsystems", []):
        lines.append(f"  {row['subsystem']:<15} {row['self_seconds']:>9.4f}"
                     f"   {100 * row['share']:5.1f}%")
    funcs = payload.get("functions", [])[:top_n]
    if funcs:
        lines.append("  top functions by self time:")
        for f in funcs:
            lines.append(
                f"    {f['self_seconds']:>9.4f}s {f['calls']:>9}x "
                f"[{f['subsystem']:<13}] {f['file']}:{f['name']}")
    scopes = payload.get("scopes", [])
    if scopes:
        lines.append("  wall scopes:")
        for s in scopes:
            lines.append(f"    {s['wall_seconds']:>9.4f}s {s['count']:>6}x "
                         f"{s['name']}")
    return "\n".join(lines)


def write_profile_json(payload: Dict, path: str) -> str:
    """Write the profile payload as sorted JSON."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def write_folded(payload: Dict, path: str) -> int:
    """Write the folded-stack lines (flame-graph input); returns line count."""
    lines = payload.get("folded", [])
    with open(path, "w", encoding="utf-8") as fh:
        for line in lines:
            fh.write(line)
            fh.write("\n")
    return len(lines)


# -- validation ---------------------------------------------------------------

def validate_profile(payload: Dict) -> List[str]:
    """Schema/invariant check of one profile payload (CI + diff loader).

    Checks the shape (required keys, list sections), that subsystem
    shares lie in [0, 1] and sum to ~1 when any time was profiled, that
    function rows carry their required fields, and that folded lines
    parse as ``path <int>``.
    """
    errors: List[str] = []
    if not isinstance(payload, dict):
        return ["profile payload must be an object"]
    if payload.get("kind") != PROFILE_SCHEMA_KIND:
        errors.append(f"kind must be {PROFILE_SCHEMA_KIND!r}, "
                      f"got {payload.get('kind')!r}")
    for key in ("wall_seconds", "profiled_seconds"):
        value = payload.get(key)
        if not isinstance(value, (int, float)) or isinstance(value, bool) \
                or value < 0:
            errors.append(f"{key} must be a non-negative number")
    for key in ("subsystems", "functions", "scopes", "folded"):
        if not isinstance(payload.get(key), list):
            errors.append(f"{key} must be a list")
    share_sum = 0.0
    for i, row in enumerate(payload.get("subsystems") or []):
        if not isinstance(row, dict) or "subsystem" not in row:
            errors.append(f"subsystems[{i}]: malformed row")
            continue
        share = row.get("share", 0.0)
        if not 0.0 <= share <= 1.0 + 1e-9:
            errors.append(f"subsystems[{i}] ({row['subsystem']}): "
                          f"share {share} outside [0, 1]")
        share_sum += share
    if (payload.get("profiled_seconds") or 0) > 0 \
            and abs(share_sum - 1.0) > 1e-6:
        errors.append(f"subsystem shares sum to {share_sum}, expected 1")
    for i, row in enumerate(payload.get("functions") or []):
        if not isinstance(row, dict):
            errors.append(f"functions[{i}]: not an object")
            continue
        for key in ("name", "file", "subsystem", "calls", "self_seconds",
                    "cum_seconds"):
            if key not in row:
                errors.append(f"functions[{i}]: missing {key!r}")
    for i, line in enumerate(payload.get("folded") or []):
        if not isinstance(line, str) or " " not in line:
            errors.append(f"folded[{i}]: not a 'path value' line")
            continue
        path, _sep, value = line.rpartition(" ")
        if not path or not value.isdigit():
            errors.append(f"folded[{i}]: value {value!r} not an integer")
    return errors
