"""Exporters: span JSON-lines, Chrome ``trace_event``, metrics snapshots.

Three output formats, all plain JSON so nothing outside the standard
library is needed:

* **Span log** (``write_span_jsonl``) — one JSON object per line per
  finished span.  Stable field order, deterministic ids: the CI
  determinism leg diffs two logs byte-for-byte.
* **Chrome trace** (``write_chrome_trace``) — the ``trace_event`` JSON
  array format.  Load it at https://ui.perfetto.dev ("Open trace file")
  to see the per-stage timeline; each simulated node renders as a
  process, each RPC trace as a track.
* **Metrics snapshot** (``write_metrics_json``) — the registry's flat
  ``snapshot()`` dict, sorted keys.

``SPAN_SCHEMA`` is a JSON-Schema-style description of one span-log line,
and ``validate_span_log`` / ``validate_chrome_trace`` check real output
against it with a small pure-Python validator (the container has no
``jsonschema`` package, and the subset we need is tiny).
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional, Sequence

from repro.obs.span import Span

__all__ = [
    "SPAN_SCHEMA",
    "chrome_trace",
    "metrics_snapshot",
    "span_record",
    "validate_chrome_trace",
    "validate_span_log",
    "write_chrome_trace",
    "write_metrics_json",
    "write_span_jsonl",
]

#: seconds -> microseconds (Chrome trace_event timestamps are in µs)
_US = 1e6

# -- span JSON-lines ----------------------------------------------------------

#: JSON-Schema (draft-ish subset) for one span-log line.
SPAN_SCHEMA: Dict = {
    "type": "object",
    "required": ["trace_id", "span_id", "parent_id", "name",
                 "node", "start", "end", "dur"],
    "properties": {
        "trace_id": {"type": "integer", "minimum": 1},
        "span_id": {"type": "integer", "minimum": 1},
        "parent_id": {"type": ["integer", "null"]},
        "name": {"type": "string", "minLength": 1},
        "node": {"type": ["integer", "null"]},
        "start": {"type": "number", "minimum": 0},
        "end": {"type": "number", "minimum": 0},
        "dur": {"type": "number", "minimum": 0},
        "attrs": {"type": "object"},
    },
    "additionalProperties": False,
}


def span_record(span: Span) -> Dict:
    """The JSON-lines record for one finished span (stable key order)."""
    rec = {
        "trace_id": span.trace_id,
        "span_id": span.span_id,
        "parent_id": span.parent_id,
        "name": span.name,
        "node": span.node,
        "start": span.start,
        "end": span.end,
        "dur": span.end - span.start,
    }
    if span.attrs:
        rec["attrs"] = {k: span.attrs[k] for k in sorted(span.attrs)}
    return rec


def write_span_jsonl(spans: Iterable[Span], path: str) -> int:
    """Write finished spans as JSON-lines; returns the number written."""
    n = 0
    with open(path, "w") as fh:
        for span in spans:
            if not span.finished:
                continue
            fh.write(json.dumps(span_record(span), sort_keys=False))
            fh.write("\n")
            n += 1
    return n


# -- Chrome trace_event -------------------------------------------------------

def chrome_trace(spans: Iterable[Span], pid_base: int = 0,
                 process_prefix: str = "node") -> List[Dict]:
    """Spans as Chrome ``trace_event`` objects (the JSON-array format).

    Each span becomes an ``"X"`` (complete) event with microsecond
    ``ts``/``dur``; ``pid`` is the simulated node (+ ``pid_base``, so a
    multi-run export can give every run a disjoint pid range) and ``tid``
    the trace id, so one RPC's stages share a track and nest visually by
    interval containment.  ``"M"`` metadata events name each process.
    """
    events: List[Dict] = []
    pids_seen: Dict[int, Optional[int]] = {}
    for span in spans:
        if not span.finished:
            continue
        node = span.node
        pid = pid_base + (node if node is not None else 999)
        pids_seen.setdefault(pid, node)
        event: Dict = {
            "name": span.name,
            "cat": "rpc" if span.parent_id is None else "stage",
            "ph": "X",
            "ts": span.start * _US,
            "dur": (span.end - span.start) * _US,
            "pid": pid,
            "tid": span.trace_id,
        }
        args: Dict = {"span_id": span.span_id}
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        for key in sorted(span.attrs):
            args[key] = span.attrs[key]
        event["args"] = args
        events.append(event)
    meta: List[Dict] = []
    for pid in sorted(pids_seen):
        node = pids_seen[pid]
        label = f"{process_prefix}{node}" if node is not None else f"{process_prefix}?"
        meta.append({
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": label},
        })
    return meta + events


def write_chrome_trace(spans: Iterable[Span], path: str,
                       pid_base: int = 0,
                       process_prefix: str = "node") -> int:
    """Write spans as a Chrome/Perfetto trace file; returns event count."""
    events = chrome_trace(spans, pid_base=pid_base,
                          process_prefix=process_prefix)
    with open(path, "w") as fh:
        json.dump({"traceEvents": events,
                   "displayTimeUnit": "ms"}, fh, indent=1)
        fh.write("\n")
    return len(events)


# -- metrics snapshot ---------------------------------------------------------

def metrics_snapshot(registry, prefixes: Optional[Sequence[str]] = None) -> Dict:
    """The registry's flat snapshot (passthrough for symmetry with writers)."""
    return registry.snapshot(prefixes)


def write_metrics_json(registry, path: str,
                       prefixes: Optional[Sequence[str]] = None) -> int:
    """Dump the registry snapshot as sorted JSON; returns metric count."""
    snap = registry.snapshot(prefixes)
    with open(path, "w") as fh:
        json.dump(snap, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return len(snap)


# -- validation ---------------------------------------------------------------

def _check(value, schema: Dict, where: str, errors: List[str]) -> None:
    """Validate ``value`` against the JSON-Schema subset we use."""
    expected = schema.get("type")
    if expected is not None:
        kinds = expected if isinstance(expected, list) else [expected]
        ok = False
        for kind in kinds:
            if kind == "object" and isinstance(value, dict):
                ok = True
            elif kind == "string" and isinstance(value, str):
                ok = True
            elif kind == "integer" and isinstance(value, int) \
                    and not isinstance(value, bool):
                ok = True
            elif kind == "number" and isinstance(value, (int, float)) \
                    and not isinstance(value, bool):
                ok = True
            elif kind == "null" and value is None:
                ok = True
            elif kind == "array" and isinstance(value, list):
                ok = True
            elif kind == "boolean" and isinstance(value, bool):
                ok = True
        if not ok:
            errors.append(f"{where}: expected {expected}, "
                          f"got {type(value).__name__}")
            return
    if "minimum" in schema and isinstance(value, (int, float)) \
            and not isinstance(value, bool) and value < schema["minimum"]:
        errors.append(f"{where}: {value} < minimum {schema['minimum']}")
    if "minLength" in schema and isinstance(value, str) \
            and len(value) < schema["minLength"]:
        errors.append(f"{where}: shorter than minLength {schema['minLength']}")
    if isinstance(value, dict):
        for field in schema.get("required", ()):
            if field not in value:
                errors.append(f"{where}: missing required field {field!r}")
        props = schema.get("properties", {})
        for key, sub in props.items():
            if key in value:
                _check(value[key], sub, f"{where}.{key}", errors)
        if schema.get("additionalProperties") is False:
            for key in value:
                if key not in props:
                    errors.append(f"{where}: unexpected field {key!r}")


def validate_span_log(path: str) -> List[str]:
    """Validate a span JSON-lines file; returns a list of error strings.

    Beyond the schema, cross-field invariants are checked: ``end >=
    start``, ``dur == end - start``, and every non-null ``parent_id``
    refers to a span that appears in the same log.
    """
    errors: List[str] = []
    span_ids = set()
    parents: List[tuple] = []
    with open(path) as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except ValueError as exc:
                errors.append(f"line {lineno}: invalid JSON ({exc})")
                continue
            _check(rec, SPAN_SCHEMA, f"line {lineno}", errors)
            if not isinstance(rec, dict):
                continue
            start, end, dur = rec.get("start"), rec.get("end"), rec.get("dur")
            if isinstance(start, (int, float)) and isinstance(end, (int, float)):
                if end < start:
                    errors.append(f"line {lineno}: end {end} < start {start}")
                if isinstance(dur, (int, float)) \
                        and abs(dur - (end - start)) > 1e-12:
                    errors.append(f"line {lineno}: dur {dur} != end - start")
            if isinstance(rec.get("span_id"), int):
                span_ids.add(rec["span_id"])
            if isinstance(rec.get("parent_id"), int):
                parents.append((lineno, rec["parent_id"]))
    for lineno, pid in parents:
        if pid not in span_ids:
            errors.append(f"line {lineno}: parent_id {pid} not in log")
    return errors


_CHROME_EVENT_SCHEMA: Dict = {
    "type": "object",
    "required": ["name", "ph", "pid", "tid"],
    "properties": {
        "name": {"type": "string", "minLength": 1},
        "cat": {"type": "string"},
        "ph": {"type": "string", "minLength": 1},
        "ts": {"type": "number", "minimum": 0},
        "dur": {"type": "number", "minimum": 0},
        "pid": {"type": "integer", "minimum": 0},
        "tid": {"type": "integer", "minimum": 0},
        "args": {"type": "object"},
    },
    "additionalProperties": False,
}


def validate_chrome_trace(path: str) -> List[str]:
    """Validate a Chrome trace file; returns a list of error strings."""
    errors: List[str] = []
    try:
        with open(path) as fh:
            doc = json.load(fh)
    except ValueError as exc:
        return [f"invalid JSON: {exc}"]
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        return ["top level must be an object with a traceEvents array"]
    events = doc["traceEvents"]
    if not isinstance(events, list):
        return ["traceEvents must be an array"]
    for i, event in enumerate(events):
        _check(event, _CHROME_EVENT_SCHEMA, f"event {i}", errors)
        if isinstance(event, dict) and event.get("ph") == "X" \
                and "ts" not in event:
            errors.append(f"event {i}: complete event missing ts")
    return errors
