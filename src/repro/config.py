"""Cluster and cost-model configuration.

All timing constants of the simulated testbed live here, calibrated to the
Ares cluster figures quoted in the paper (Section IV-A and IV-B):

* inter-node bandwidth ~= 4.5 GB/s (OSU benchmark between two Ares nodes)
* node memory bandwidth ~= 65 GB/s (STREAM with 40 threads)
* 40 cores / node, ConnectX-4 Lx 40GbE RoCE, 96 GB RAM
* Fig 1: 40 clients x 8192 remote 4KB ops cost ~= 0.30 s per remote verb
  stage per client under contention => per-verb base latency and NIC service
  times below.

Every experiment accepts a :class:`ClusterSpec`; benchmarks default to
scaled-down process/op counts but keep the paper's structure.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

__all__ = ["CostModel", "ClusterSpec", "RetryPolicy", "DEFAULT_COST_MODEL",
           "ares_like"]

KB = 1024
MB = 1024 * 1024
GB = 1024 * 1024 * 1024


@dataclass(frozen=True)
class RetryPolicy:
    """RPC timeout/retry contract (Mercury-style: part of the RPC layer,
    not an afterthought).  Used by :class:`repro.rpc.client.RpcClient`
    whenever a fault plan is installed or the target is known-dead —
    fair-weather RPC on a healthy fabric never arms a timer, so fault-free
    runs remain bit-identical to the classic protocol.

    ``max_retries`` counts *retransmissions*: a request is attempted at
    most ``1 + max_retries`` times before the client surfaces
    :class:`~repro.rpc.future.TargetUnavailable`.
    """

    timeout: float = 60e-6  # per-attempt completion timeout (seconds)
    max_retries: int = 6  # retransmissions after the first attempt
    backoff_base: float = 10e-6  # wait before the first retransmission
    backoff_factor: float = 2.0  # exponential growth per retry
    backoff_max: float = 400e-6  # backoff ceiling

    def __post_init__(self):
        if self.timeout <= 0:
            raise ValueError("timeout must be positive")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1.0")

    def backoff(self, attempt: int) -> float:
        """Backoff before retransmission number ``attempt`` (1-based)."""
        return min(
            self.backoff_max,
            self.backoff_base * self.backoff_factor ** (attempt - 1),
        )


@dataclass(frozen=True)
class CostModel:
    """Timing constants (seconds / bytes-per-second) for the simulated fabric.

    The symbols follow Table I of the paper:

    * ``F`` — cost of invoking a function on remote memory (RPC dispatch)
    * ``L`` — a local memory operation (pointer chase / compare)
    * ``R``/``W`` — local read / write, charged per byte against node
      memory bandwidth plus a base cost
    """

    # --- network ----------------------------------------------------------
    link_bandwidth: float = 4.5 * GB  # bytes/s, matches OSU number in paper
    link_lanes: int = 1  # rails per node (Ares: 1x40GbE QSFP+)
    link_latency: float = 3.0e-6  # one-way propagation, RoCE-class
    switch_latency: float = 0.5e-6  # per hop through the crossbar
    mtu: int = 4096  # packetization unit (RoCE jumbo-ish)
    per_packet_overhead: float = 0.15e-6  # serialization of headers etc.

    # --- NIC ----------------------------------------------------------------
    nic_cores: int = 4  # BlueField-class multi-core NIC
    nic_verb_service: float = 1.2e-6  # WQE processing per verb on NIC core
    nic_atomic_service: float = 1.6e-6  # CAS/FAA execution on NIC core
    nic_rpc_dispatch: float = 2.5e-6  # de-marshal + dispatch of an RPC
    nic_doorbell: float = 0.4e-6  # MMIO doorbell ring from host CPU
    # NIC cores (BlueField-class ARM) execute data-structure code several
    # times slower than host Xeons; RPC handler compute is scaled by this.
    # The hybrid access model's local bypass runs at factor 1.0 on the host.
    nic_compute_factor: float = 6.0

    # --- host memory ----------------------------------------------------------
    memory_bandwidth: float = 65.0 * GB  # STREAM, whole node
    local_op: float = 30.0e-9  # one ``L`` (pointer chase, compare)
    local_read_base: float = 60.0e-9  # base of one ``R``
    local_write_base: float = 80.0e-9  # base of one ``W``
    cas_local: float = 45.0e-9  # local CAS (cache-line locked op)

    # --- software ---------------------------------------------------------------
    serialize_per_byte: float = 0.08e-9  # DataBox marshal cost
    serialize_base: float = 0.5e-6
    rpc_client_overhead: float = 1.0e-6  # client stub bookkeeping
    persist_per_byte: float = 0.35e-9  # msync-to-NVMe amortized
    persist_base: float = 4.0e-6

    # --- BCL-specific ------------------------------------------------------------
    bcl_buffer_per_client: int = 64 * KB  # exclusive RDMA buffer floor
    bcl_init_bandwidth: float = 8.0 * GB  # rate of up-front segment alloc

    # --- RPC reliability ----------------------------------------------------------
    retry: "RetryPolicy" = field(default_factory=RetryPolicy)

    def transfer_time(self, nbytes: int) -> float:
        """Pure wire time for ``nbytes`` over one link (no queueing)."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        packets = max(1, -(-nbytes // self.mtu))
        return nbytes / self.link_bandwidth + packets * self.per_packet_overhead

    def local_read(self, nbytes: int) -> float:
        return self.local_read_base + nbytes / self.memory_bandwidth

    def local_write(self, nbytes: int) -> float:
        return self.local_write_base + nbytes / self.memory_bandwidth

    def serialize(self, nbytes: int) -> float:
        return self.serialize_base + nbytes * self.serialize_per_byte

    def persist(self, nbytes: int) -> float:
        return self.persist_base + nbytes * self.persist_per_byte


@dataclass(frozen=True)
class ClusterSpec:
    """Shape of the simulated cluster for one experiment."""

    nodes: int = 2
    procs_per_node: int = 40
    cores_per_node: int = 40
    memory_per_node: int = 96 * GB
    cost: CostModel = field(default_factory=CostModel)
    seed: int = 0

    def __post_init__(self):
        if self.nodes < 1:
            raise ValueError("nodes must be >= 1")
        if self.procs_per_node < 1:
            raise ValueError("procs_per_node must be >= 1")

    @property
    def total_procs(self) -> int:
        return self.nodes * self.procs_per_node

    def scaled(self, **kwargs) -> "ClusterSpec":
        """Return a copy with overrides (dataclasses.replace sugar)."""
        return replace(self, **kwargs)


DEFAULT_COST_MODEL = CostModel()


def ares_like(nodes: int, procs_per_node: int = 40, seed: int = 0,
              cost: Optional[CostModel] = None) -> ClusterSpec:
    """The paper's testbed shape: 40-core nodes, RoCE 40GbE, 96 GB."""
    return ClusterSpec(
        nodes=nodes,
        procs_per_node=procs_per_node,
        cores_per_node=40,
        memory_per_node=96 * GB,
        cost=cost or DEFAULT_COST_MODEL,
        seed=seed,
    )
