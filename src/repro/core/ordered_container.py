"""HCL::map and HCL::set — ordered containers (Section III-D2).

Each partition is "an ordered partition, containing the key space" backed by
a red-black tree; the global key space is split across partitions so that
partition order equals key order, and in-order traversal concatenates
partitions.  The comparator defaults to ``operator<`` (``std::less``) and is
user-overridable, as is the key-space partitioner.

The default partitioner hashes nothing: it range-partitions a configurable
``key_space`` interval (numeric keys), or falls back to round-robin on key
length for strings — the paper's "distribute the key-space in a round-robin
fashion based on the key length".
"""

from __future__ import annotations

from typing import Any, Callable, Hashable, Iterator, List, Optional, Tuple

from repro.core.container import DistributedContainer, Partition
from repro.rpc.future import RPCFuture
from repro.structures.rbtree import RedBlackTree

__all__ = ["HCLMap", "HCLSet", "range_partitioner", "keylen_partitioner"]


def range_partitioner(lo: float, hi: float) -> Callable[[Any, int], int]:
    """Split numeric keys of ``[lo, hi)`` into equal per-partition ranges."""
    if not lo < hi:
        raise ValueError("need lo < hi")

    def pick(key, nparts: int) -> int:
        if key < lo:
            return 0
        if key >= hi:
            return nparts - 1
        return int((key - lo) / (hi - lo) * nparts)

    return pick


def keylen_partitioner(key, nparts: int) -> int:
    """Round-robin on key length (strings/sequences), per the paper."""
    try:
        return len(key) % nparts
    except TypeError:
        return int(key) % nparts


class _OrderedContainerBase(DistributedContainer):
    OPERATIONS = ("insert", "find", "erase", "resize", "range_find",
                  "min_key", "max_key", "batch", "size")

    def _do_size(self, part: Partition):
        from repro.structures.stats import OpStats

        return len(part.structure), OpStats(local_ops=1), 8

    def count(self, rank: int):
        """Generator: total entries across all partitions (fan-out reads)."""
        futures = [
            self._execute_async(rank, part, "size", (), 8)
            for part in self.partitions
        ]
        total = 0
        for fut in futures:
            yield fut.wait()
            total += fut.result
        return total

    def batch(self, rank: int, ops: "list"):
        """Generator: keyed multi-op (same contract as the hash containers):
        ``("insert", key, value)`` / ``("find", key)`` / ``("erase", key)``
        grouped into one invocation per partition."""
        results = yield from self._keyed_batch(rank, ops)
        return results

    def __init__(self, runtime, name, partitions,
                 partitioner: Optional[Callable[[Any, int], int]] = None,
                 less: Optional[Callable[[Any, Any], bool]] = None,
                 **kwargs):
        self._partitioner = partitioner or keylen_partitioner
        self._less = less or (lambda a, b: a < b)
        super().__init__(runtime, name, partitions, **kwargs)
        if self.replication:
            self._bind_replica_handlers()

    def partition_for(self, key: Hashable) -> Partition:
        idx = self._partitioner(key, len(self.partitions))
        if not 0 <= idx < len(self.partitions):
            raise IndexError(
                f"partitioner returned {idx} for key {key!r} "
                f"({len(self.partitions)} partitions)"
            )
        return self.partitions[idx]

    # -- resize: Table I gives F + N log(N) (R + W) for the ordered case -----
    def _do_resize(self, part: Partition, new_bytes: int):
        from repro.structures.stats import OpStats

        tree: RedBlackTree = part.structure
        n = len(tree)
        stats = OpStats(resized=True, resize_entries=n,
                        local_ops=n * max(1, n.bit_length()))
        if new_bytes > part.segment.size:
            part.segment.grow(new_bytes)
        return True, stats, 128

    def resize(self, rank: int, partition_id: int, new_bytes: int):
        part = self.partitions[partition_id]
        result = yield from self._execute(
            rank, part, "resize", (new_bytes,), payload_bytes=16
        )
        return result

    # -- range queries (the ordered containers' reason to exist) -------------
    def _do_range_find(self, part: Partition, lo, hi, limit):
        from repro.structures.stats import OpStats

        tree: RedBlackTree = part.structure
        out = []
        for k, v in tree.range_items(lo, hi):
            out.append((k, v))
            if limit is not None and len(out) >= limit:
                break
        n = len(out)
        stats = OpStats(local_ops=max(1, len(tree)).bit_length() + n,
                        reads=n)
        return out, stats, 64

    def _do_min_key(self, part: Partition):
        from repro.structures.stats import OpStats

        tree: RedBlackTree = part.structure
        k = tree.min_key()
        return k, OpStats(local_ops=max(1, len(tree)).bit_length()), 16

    def _do_max_key(self, part: Partition):
        from repro.structures.stats import OpStats

        tree: RedBlackTree = part.structure
        k = tree.max_key()
        return k, OpStats(local_ops=max(1, len(tree)).bit_length()), 16

    def range_find(self, rank: int, lo, hi, limit: Optional[int] = None):
        """Generator: all ``lo <= key < hi`` items, globally ordered.

        Fans out one ``range_find`` invocation per partition (served in
        parallel through async futures), then merges.  With an
        order-preserving partitioner the merge is a concatenation; with a
        scattering partitioner the results are merge-sorted client-side.
        """
        futures = [
            self._execute_async(rank, part, "range_find", (lo, hi, limit), 32)
            for part in self.partitions
        ]
        chunks = []
        for fut in futures:
            yield fut.wait()
            chunks.append([tuple(item) for item in fut.result])
        merged: List[Tuple[Hashable, Any]] = []
        for chunk in chunks:
            merged.extend(chunk)
        merged.sort(key=lambda kv: _SortKey(kv[0], self._less))
        if limit is not None:
            merged = merged[:limit]
        return merged

    def min_key(self, rank: int):
        """Generator: the smallest key across all partitions (or None)."""
        futures = [
            self._execute_async(rank, part, "min_key", (), 16)
            for part in self.partitions
        ]
        best = None
        for fut in futures:
            yield fut.wait()
            k = fut.result
            if k is not None and (best is None or self._less(k, best)):
                best = k
        return best

    def max_key(self, rank: int):
        """Generator: the largest key across all partitions (or None)."""
        futures = [
            self._execute_async(rank, part, "max_key", (), 16)
            for part in self.partitions
        ]
        best = None
        for fut in futures:
            yield fut.wait()
            k = fut.result
            if k is not None and (best is None or self._less(best, k)):
                best = k
        return best

    # -- ordered iteration across partitions (tests/apps helper) ----------------
    def _all_items_sorted(self) -> Iterator[Tuple[Hashable, Any]]:
        """In-order across the whole container.

        Correct global order requires an order-preserving partitioner
        (e.g. :func:`range_partitioner`); with the default key-length
        round-robin it is per-partition order only, like the paper's.
        """
        for part in self.partitions:
            yield from part.structure.items()


class _SortKey:
    """Adapter: total order from the container's ``less`` comparator."""

    __slots__ = ("key", "less")

    def __init__(self, key, less):
        self.key = key
        self.less = less

    def __lt__(self, other: "_SortKey") -> bool:
        return self.less(self.key, other.key)


class HCLMap(_OrderedContainerBase):
    """Distributed ordered map over red-black trees."""

    #: mapped values are stored verbatim; ordering uses keys alone.
    SIM_ONLY_VALUE_ARGS = {"insert": 1}

    def _do_insert(self, part: Partition, key, value):
        entry_bytes = self._entry_bytes(key, value)
        _new, stats = part.structure.insert(key, value)
        self._grow_segment_if_resized(part, stats, entry_bytes)
        return True, stats, entry_bytes

    def _do_find(self, part: Partition, key):
        value, found, stats = part.structure.find(key)
        entry_bytes = self._entry_bytes(key, value) if found else 16
        return (value if found else None, found), stats, entry_bytes

    def _do_erase(self, part: Partition, key):
        ok, stats = part.structure.remove(key)
        return ok, stats, 16

    def insert(self, rank: int, key, value):
        """Table I: F + L·log(N) + W."""
        part = self.partition_for(key)
        payload = self._entry_bytes(key, value)
        result = yield from self._execute(
            rank, part, "insert", (key, value), payload_bytes=payload
        )
        return result

    def insert_async(self, rank: int, key, value) -> RPCFuture:
        part = self.partition_for(key)
        return self._execute_async(
            rank, part, "insert", (key, value), self._entry_bytes(key, value)
        )

    def async_insert(self, rank: int, key, value) -> RPCFuture:
        """Pipelined insert: write-combined, with a per-op result future."""
        part = self.partition_for(key)
        return self._pipeline_op(
            rank, part, "insert", (key, value),
            self._entry_bytes(key, value),
        )

    def find(self, rank: int, key):
        """Table I: F + L·log(N) + R.  Returns ``(value, found)``."""
        part = self.partition_for(key)
        result = yield from self._execute(
            rank, part, "find", (key,), payload_bytes=self._entry_bytes(key)
        )
        return tuple(result)

    def async_find(self, rank: int, key) -> RPCFuture:
        """Pipelined find; future of ``(value, found)``."""
        part = self.partition_for(key)
        return self._execute_async(
            rank, part, "find", (key,), self._entry_bytes(key)
        ).then(tuple)

    def erase(self, rank: int, key):
        part = self.partition_for(key)
        result = yield from self._execute(
            rank, part, "erase", (key,), payload_bytes=self._entry_bytes(key)
        )
        return result


class HCLSet(_OrderedContainerBase):
    """Distributed ordered set."""

    def _do_insert(self, part: Partition, key):
        entry_bytes = self._entry_bytes(key)
        _new, stats = part.structure.insert(key, True)
        self._grow_segment_if_resized(part, stats, entry_bytes)
        return True, stats, entry_bytes

    def _do_find(self, part: Partition, key):
        found, stats = part.structure.contains(key)
        return found, stats, self._entry_bytes(key)

    def _do_erase(self, part: Partition, key):
        ok, stats = part.structure.remove(key)
        return ok, stats, 16

    def insert(self, rank: int, key):
        part = self.partition_for(key)
        result = yield from self._execute(
            rank, part, "insert", (key,), payload_bytes=self._entry_bytes(key)
        )
        return result

    def async_insert(self, rank: int, key) -> RPCFuture:
        """Pipelined insert: write-combined, with a per-op result future."""
        part = self.partition_for(key)
        return self._pipeline_op(
            rank, part, "insert", (key,), self._entry_bytes(key)
        )

    def find(self, rank: int, key):
        part = self.partition_for(key)
        result = yield from self._execute(
            rank, part, "find", (key,), payload_bytes=self._entry_bytes(key)
        )
        return result

    def async_find(self, rank: int, key) -> RPCFuture:
        """Pipelined membership test; future of the boolean."""
        part = self.partition_for(key)
        return self._execute_async(
            rank, part, "find", (key,), self._entry_bytes(key)
        )

    def erase(self, rank: int, key):
        part = self.partition_for(key)
        result = yield from self._execute(
            rank, part, "erase", (key,), payload_bytes=self._entry_bytes(key)
        )
        return result
