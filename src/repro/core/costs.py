"""Charging structure work to simulated time, and the Table I cost ledger.

Table I of the paper expresses each container operation's worst-case cost in
the symbols **F** (remote function invocation), **L** (local memory op),
**R**/**W** (local read/write), **N** (entries), **E** (elements).  Every
container handler converts the :class:`~repro.structures.stats.OpStats`
returned by the real local structure into simulated time with
:func:`charge`, and records the symbol counts in a :class:`CostLedger` so
the Table I reproduction bench can compare measured counts against the
formulas.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Optional

from repro.fabric.node import Node
from repro.structures.stats import OpStats

__all__ = ["charge", "CostLedger", "estimate_charge_time"]


def estimate_charge_time(node: Node, stats: OpStats, entry_bytes: int,
                         cpu_factor: float = 1.0) -> float:
    """Total local-memory time for one structure operation.

    * L terms: ``local_ops`` pointer chases/comparisons
    * R terms: ``reads`` of ``entry_bytes`` each
    * W terms: ``writes`` (and ``relocations``) of ``entry_bytes`` each
    * local CAS instructions
    * resize: ``resize_entries`` entries each read + rewritten

    ``cpu_factor`` scales the *compute* terms (L and CAS) — RPC handlers run
    on the slower NIC cores (``cost.nic_compute_factor``), the hybrid
    local-bypass path on the host CPU at 1.0.  Byte-proportional terms move
    through node memory either way.
    """
    cost = node.cost
    t = stats.local_ops * cost.local_op * cpu_factor
    t += stats.reads * cost.local_read(entry_bytes)
    t += (stats.writes + stats.relocations) * cost.local_write(entry_bytes)
    t += stats.cas_ops * cost.cas_local * cpu_factor
    if stats.resize_entries:
        t += stats.resize_entries * (
            cost.local_read(entry_bytes) + cost.local_write(entry_bytes)
        )
    return t


def charge(node: Node, stats: OpStats, entry_bytes: int,
           cpu_factor: float = 1.0):
    """Generator: occupy the node's memory bus for the operation's work."""
    t = estimate_charge_time(node, stats, entry_bytes, cpu_factor)
    yield from node.memory_bus.use(t)


class CostLedger:
    """Per-operation symbol counts for the Table I validation bench.

    With a :class:`~repro.obs.registry.MetricsRegistry` attached, every
    recorded :class:`OpStats` also feeds fleet-visible ``<prefix>/table1/*``
    counters — the per-structure symbol tallies used to be merged into the
    ledger and dropped; now they are exportable alongside every other
    metric.
    """

    def __init__(self, registry=None, prefix: str = ""):
        self._ops: Dict[str, Dict[str, float]] = defaultdict(
            lambda: {"count": 0, "F": 0, "L": 0, "R": 0, "W": 0, "CAS": 0}
        )
        self._counters = None
        if registry is not None:
            base = f"{prefix}/table1" if prefix else "table1"
            self._counters = {
                sym: registry.counter(f"{base}/{sym}")
                for sym in ("ops", "F", "L", "R", "W", "CAS")
            }

    def record(self, op: str, stats: Optional[OpStats], remote: bool,
               elements: int = 1) -> None:
        row = self._ops[op]
        row["count"] += 1
        row["F"] += 1 if remote else 0
        if stats is not None:
            row["L"] += stats.local_ops
            row["R"] += stats.reads
            row["W"] += stats.writes + stats.relocations
            row["CAS"] += stats.cas_ops
            if stats.resize_entries:
                row["R"] += stats.resize_entries
                row["W"] += stats.resize_entries
        if self._counters is not None:
            self._counters["ops"].add(1)
            if remote:
                self._counters["F"].add(1)
            if stats is not None:
                self._counters["L"].add(stats.local_ops)
                self._counters["R"].add(stats.reads + stats.resize_entries)
                self._counters["W"].add(
                    stats.writes + stats.relocations + stats.resize_entries
                )
                self._counters["CAS"].add(stats.cas_ops)

    def per_op(self, op: str) -> Dict[str, float]:
        """Average symbol counts per call of ``op``."""
        row = self._ops.get(op)
        if not row or row["count"] == 0:
            return {"count": 0, "F": 0.0, "L": 0.0, "R": 0.0, "W": 0.0, "CAS": 0.0}
        n = row["count"]
        return {
            "count": n,
            **{sym: row[sym] / n for sym in ("F", "L", "R", "W", "CAS")},
        }

    def ops(self):
        return sorted(self._ops)
