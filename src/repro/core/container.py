"""Base machinery shared by all HCL distributed containers.

A container owns one partition per hosting node slot.  Each
:class:`Partition` couples a *real* local structure (cuckoo / rbtree /
queue / mdlist) with a :class:`~repro.memory.segment.MemorySegment` for
memory accounting and optional persistence.

The **hybrid data access model** (Section III-C5) lives in
:meth:`DistributedContainer._execute`: if the target partition's node equals
the calling rank's node, the operation bypasses the RPC machinery entirely
and runs against shared memory (charging only the structure's local-memory
cost); otherwise a single RoR invocation ships the operation to the target
NIC.

Replication (Section III-A4) is asynchronous and server-side: after a
mutating handler completes, the hosting node re-invokes the operation on
the next ``replication`` partitions without the caller waiting.

Persistence (Section III-C6): mutating handlers append a DataBox record to
the partition's mmap-backed log and charge the device sync cost
(per-operation in strict mode, batched in relaxed mode).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.costs import CostLedger, charge
from repro.memory.segment import MemorySegment
from repro.obs.registry import registry_of
from repro.rpc.coalesce import MISS, OpCoalescer, ReadCache
from repro.rpc.future import RPCFuture
from repro.serialization.databox import DataBox, SizedStub, estimate_size
from repro.structures.stats import OpStats

__all__ = ["Partition", "DistributedContainer"]


class Partition:
    """One partition: a local structure on a node, plus its segment.

    ``index`` is the positional slot in the container's partition list
    (used for RPC routing) and may change when partitions are removed;
    ``uid`` is a stable identity assigned at creation, used by the
    rendezvous hash so that membership changes move a minimal key set.
    """

    def __init__(self, index: int, node_id: int, structure: Any,
                 segment: MemorySegment, uid: int = None):
        self.index = index
        self.uid = uid if uid is not None else index
        self.node_id = node_id
        self.structure = structure
        self.segment = segment
        # Keyed by the segment's unique name (``<container>.<index>``), not
        # the positional index — two containers' partition counters must not
        # collide in the shared registry.
        self.ops = registry_of(segment.node.sim).counter(f"{segment.name}/ops")
        #: monotonic mutation counter; the read cache's staleness authority
        self.write_epoch = 0

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Partition {self.index} on node {self.node_id}>"


class DistributedContainer:
    """Common behaviour for all HCL DDSs."""

    #: subclasses list their operation names, e.g. ("insert", "find", ...)
    OPERATIONS: Tuple[str, ...] = ()

    #: concurrency-control levels (Section III-D: "HCL allows its users to
    #: tune the level of atomicity by setting the appropriate concurrency
    #: control parameter").  ``lockfree`` relies on the lock-free local
    #: structures (default); ``mutex`` serializes every operation on a
    #: partition behind one lock — stronger isolation, lower concurrency.
    CONCURRENCY_LEVELS = ("lockfree", "mutex")

    def __init__(
        self,
        runtime,
        name: str,
        partitions: Sequence[Partition],
        codec: str = "msgpack",
        replication: int = 0,
        persistence: bool = False,
        concurrency: str = "lockfree",
        write_failover: bool = False,
        aggregation: int = 0,
        aggregation_bytes: int = 32 * 1024,
        read_cache: bool = False,
        batch_charge: bool = False,
        sim_only: bool = False,
    ):
        if concurrency not in self.CONCURRENCY_LEVELS:
            raise ValueError(
                f"concurrency must be one of {self.CONCURRENCY_LEVELS}"
            )
        if write_failover and replication <= 0:
            raise ValueError("write_failover requires replication >= 1")
        auto_aggregation = aggregation == "auto"
        if not auto_aggregation and (not isinstance(aggregation, int)
                                     or aggregation < 0):
            raise ValueError(
                'aggregation must be >= 0 (0 disables buffering) or "auto"'
            )
        if sim_only and persistence:
            raise ValueError(
                "sim_only replaces payloads with size stubs; incompatible "
                "with persistence (the log must hold real values)"
            )
        self.runtime = runtime
        self.name = name
        self.partitions: List[Partition] = list(partitions)
        self.codec = codec
        self.replication = replication
        self.persistence = persistence
        self.concurrency = concurrency
        #: opt-in: redirect acked writes to a replica while the primary is
        #: down, then replay them onto the primary when it restarts.  Off by
        #: default — the classic contract is that mutations to a dead
        #: primary fail loudly.
        self.write_failover = write_failover
        #: request aggregation (Section III-C3 / Table I amortization):
        #: ``aggregation=N`` write-combines buffered ops into per-(node,
        #: partition) buffers of up to N ops, flushed as ONE ``batch``
        #: invocation.  ``aggregation="auto"`` starts small and self-tunes
        #: the threshold from observed flush efficiency against the Table-I
        #: cost model.  0 (default) keeps the classic one-invocation-per-op
        #: behavior, bit-identical to an unaggregated build.
        if auto_aggregation:
            from repro.rpc.coalesce import AUTO_INITIAL

            self._coalescer = OpCoalescer(
                self, AUTO_INITIAL, aggregation_bytes, auto=True
            )
        else:
            self._coalescer = (
                OpCoalescer(self, aggregation, aggregation_bytes)
                if aggregation else None
            )
        #: locality-aware read cache for read-mostly data; epoch-validated
        #: so a cached read can never observe a stale value.
        self._cache = ReadCache(runtime.sim, name) if read_cache else None
        #: batch-charged transport (perf): coalescer flush batches ask the
        #: RPC layer for closed-form fused charging of uncontended SENDs and
        #: response pulls.  Off by default — fused transport collapses the
        #: per-stage event train, so results are semantically equivalent but
        #: same-instant interleaving is not bit-identical to per-packet runs.
        self.batch_charge = batch_charge
        #: sim-only mode (perf): declared opaque value arguments are swapped
        #: for size-preserving stubs before storage and marshalling, so
        #: benches that only need timing skip real payload movement.  Every
        #: simulated cost derives from the same sizes (bit-identical
        #: timeline); keyed reads return stubs instead of real data.
        self.sim_only = sim_only
        #: rank -> home node, precomputed (rank placement is static) so the
        #: pipelined per-op path skips two calls per operation
        cluster = runtime.cluster
        self._rank_home = [
            cluster.node_of_rank(r) for r in range(cluster.total_procs)
        ]
        metrics = registry_of(runtime.sim)
        self.ledger = CostLedger(metrics, prefix=name)
        self.local_hits = metrics.counter(f"{name}/local")
        self.remote_calls = metrics.counter(f"{name}/remote")
        self.failover_reads = metrics.counter(f"{name}/failover_reads")
        self.failover_writes = metrics.counter(f"{name}/failover_writes")
        self.replayed_writes = metrics.counter(f"{name}/replayed_writes")
        #: node_id -> [(part_index, op, args, token), ...] awaiting replay
        self._replay: Dict[int, List[tuple]] = {}
        self._replay_hooked: set = set()
        self._replaying: set = set()
        if concurrency == "mutex":
            from repro.simnet.sync import SimLock

            self._mutexes = {
                part.index: SimLock(runtime.sim, name=f"{name}.{part.index}")
                for part in self.partitions
            }
        else:
            self._mutexes = {}
        self._bind_handlers()

    def _mutex_of(self, part: "Partition"):
        if self.concurrency != "mutex":
            return None
        lock = self._mutexes.get(part.index)
        if lock is None:  # partitions added dynamically
            from repro.simnet.sync import SimLock

            lock = SimLock(self.runtime.sim, name=f"{self.name}.{part.index}")
            self._mutexes[part.index] = lock
        return lock

    # -- wiring -------------------------------------------------------------
    def _bind_handlers(self) -> None:
        """Bind one handler per (operation, hosting node)."""
        bound_nodes = set()
        for part in self.partitions:
            if part.node_id in bound_nodes:
                continue
            bound_nodes.add(part.node_id)
            server = self.runtime.server(part.node_id)
            for op in self.OPERATIONS:
                server.bind(f"{self.name}.{op}", self._make_handler(op))

    def _make_handler(self, op: str) -> Callable:
        method = getattr(self, f"_do_{op}")

        def handler(ctx, part_index, *args):
            part = self.partitions[part_index]
            mutex = self._mutex_of(part)
            if mutex is not None:
                yield mutex.acquire()
                # lock/unlock themselves are atomic RMWs on the NIC core
                yield ctx.sim.timeout(
                    2 * ctx.cost.cas_local * ctx.cost.nic_compute_factor
                )
            try:
                result, stats, entry_bytes = method(part, *args)
                if op != "batch" and self._is_mutation(op):
                    part.write_epoch += 1  # _do_batch bumps per sub-op
                if stats is not None:
                    # Executed on the NIC core: compute terms run slower.
                    yield from charge(ctx.node, stats, entry_bytes,
                                      cpu_factor=ctx.cost.nic_compute_factor)
            finally:
                if mutex is not None:
                    mutex.release()
            self.ledger.record(f"{op}", stats, remote=True)
            part.ops.add(1)
            if self.persistence and self._is_mutation(op):
                yield from self._persist(part, op, args, ctx.node)
            if self.replication and self._is_mutation(op):
                self._replicate(part, op, args)
            return result

        return handler

    #: operations that never mutate (skip persistence/replication fan-out)
    READ_ONLY_OPS = frozenset(
        {"find", "contains", "size", "peek", "range_find", "min_key",
         "max_key", "scan"}
    )

    @classmethod
    def _is_mutation(cls, op: str) -> bool:
        return op not in cls.READ_ONLY_OPS

    #: single-key mutations whose ``args[0]`` is the key — the ops eligible
    #: for write-through read-cache invalidation (epoch checks remain the
    #: correctness authority; this is eager cleanup).
    KEYED_MUTATIONS = frozenset({"insert", "erase", "upsert"})

    #: ``sim_only`` declaration: op -> index (into ``args``) of the opaque
    #: value argument.  Only ops whose value is stored/forwarded verbatim
    #: and never interpreted server-side are eligible; subclasses override.
    SIM_ONLY_VALUE_ARGS: Dict[str, int] = {}

    def _stub_args(self, op: str, args: tuple) -> tuple:
        """Swap a declared opaque value for a size-preserving stub.

        ``estimate_size`` of the stub equals that of the original, so every
        downstream size computation (payload charge, server-side
        ``entry_bytes``, response sizing) is bit-identical; only the real
        Python payload stops moving.
        """
        idx = self.SIM_ONLY_VALUE_ARGS.get(op)
        if idx is None or idx >= len(args):
            return args
        value = args[idx]
        if value is None or type(value) is SizedStub:
            return args
        out = list(args)
        out[idx] = SizedStub(estimate_size(value))
        return tuple(out)

    # -- the hybrid access core -------------------------------------------------
    def _execute(self, rank: int, part: Partition, op: str, args: tuple,
                 payload_bytes: int, _drain: bool = True, trace_parent=None):
        """Generator: run ``op`` on ``part`` from ``rank`` — local or remote.

        This is the locality decision of Section III-C5: same node => direct
        shared-memory access (no RPC, no NIC); different node => one RoR
        invocation.

        A synchronous op is a sync point for the aggregation buffers: any
        ops buffered for this partition flush (and complete) first, so
        program order per rank is preserved.  ``_drain=False`` is reserved
        for the coalescer's own flush batches.
        """
        if self.sim_only:
            args = self._stub_args(op, args)
        caller_node = self.runtime.cluster.node_of_rank(rank)
        if self._coalescer is not None and _drain:
            yield from self._coalescer.drain(rank, part.index)
        if (self._cache is not None and self._cache._entries and args
                and op in self.KEYED_MUTATIONS):
            self._cache.invalidate_key(caller_node, part.index, args[0])
        if caller_node == part.node_id:
            self.local_hits.add(1)
            node = self.runtime.cluster.node(caller_node)
            method = getattr(self, f"_do_{op}")
            mutex = self._mutex_of(part)
            if mutex is not None:
                yield mutex.acquire()
            try:
                result, stats, entry_bytes = method(part, *args)
                if op != "batch" and self._is_mutation(op):
                    part.write_epoch += 1
                if stats is not None:
                    yield from charge(node, stats, entry_bytes)
            finally:
                if mutex is not None:
                    mutex.release()
            self.ledger.record(op, stats, remote=False)
            part.ops.add(1)
            if self.persistence and self._is_mutation(op):
                yield from self._persist(part, op, args, node)
            if self.replication and self._is_mutation(op):
                self._replicate(part, op, args)
            return result
        self.remote_calls.add(1)
        client = self.runtime.client(caller_node)
        mutation = self._is_mutation(op)
        token = None
        if (
            mutation
            and self.write_failover
            and (self.runtime.cluster.faults is not None
                 or not self.runtime.cluster.node(part.node_id).alive)
        ):
            # Pre-assign the idempotency token so a write replayed onto the
            # restarted primary dedups against a late execution of this
            # very request (and vice versa).
            token = client.next_token()
        try:
            result = yield from client.call(
                part.node_id,
                f"{self.name}.{op}",
                (part.index, *args),
                payload_size=payload_bytes,
                token=token,
                trace_parent=trace_parent,
                fused=(self.batch_charge and op == "batch"),
                stream=part.index,
            )
            if self._cache is not None:
                # Epoch piggybacked on the response: prune entries that
                # other nodes' writes have made stale.
                self._cache.observe(caller_node, part.index, part.write_epoch)
            return result
        except ConnectionError:
            # Primary down: replicated containers serve reads from the
            # next replica(s) in the hash chain (Section III-A4).
            if self.replication <= 0:
                raise
            if mutation:
                if not self.write_failover:
                    raise
                result = yield from self._failover_write(
                    client, part, op, args, payload_bytes, token
                )
                return result
            result = yield from self._read_from_replica(
                client, part, op, args, payload_bytes
            )
            self.failover_reads.add(1)
            return result

    def _read_from_replica(self, client, part, op, args, payload_bytes):
        from repro.fabric.node import NodeDownError

        nparts = len(self.partitions)
        last_error: Optional[BaseException] = None
        for step in range(1, self.replication + 1):
            replica = self.partitions[(part.index + step) % nparts]
            if not self.runtime.cluster.node(replica.node_id).alive:
                continue
            try:
                result = yield from client.call(
                    replica.node_id,
                    f"{self.name}.{op}",
                    (replica.index, *args),
                    payload_size=payload_bytes,
                )
                return result
            except ConnectionError as err:  # replica died too; keep going
                last_error = err
        raise last_error or NodeDownError(
            f"{self.name}.{op}: primary and all {self.replication} "
            "replicas are down"
        )

    # -- write failover + replay ------------------------------------------------
    def _failover_write(self, client, part, op, args, payload_bytes, token):
        """Apply a mutation to a live replica while the primary is down.

        The write is acked to the caller once one replica accepts it; the
        operation is then queued for replay onto the primary, which runs as
        soon as the primary restarts.  The replay reuses ``token`` — the
        *original* request's idempotency token — so if the primary executed
        the original request late (completion lost, budget exhausted) the
        replay is suppressed server-side rather than double-applied.
        """
        from repro.fabric.node import NodeDownError

        nparts = len(self.partitions)
        last_error: Optional[BaseException] = None
        for step in range(1, self.replication + 1):
            replica = self.partitions[(part.index + step) % nparts]
            if replica.index == part.index:
                continue
            if not self.runtime.cluster.node(replica.node_id).alive:
                continue
            try:
                result = yield from client.call(
                    replica.node_id,
                    f"{self.name}.{op}:replica",
                    (replica.index, *args),
                    payload_size=payload_bytes,
                )
            except ConnectionError as err:  # replica died too; keep going
                last_error = err
                continue
            self.failover_writes.add(1)
            self._queue_replay(part, op, args, token)
            return result
        raise last_error or NodeDownError(
            f"{self.name}.{op}: primary and all {self.replication} "
            "replicas are down"
        )

    def _queue_replay(self, part, op, args, token) -> None:
        """Remember an acked-on-replica write for replay onto the primary."""
        node_id = part.node_id
        self._replay.setdefault(node_id, []).append(
            (part.index, op, args, token)
        )
        if node_id not in self._replay_hooked:
            self._replay_hooked.add(node_id)
            node = self.runtime.cluster.node(node_id)
            node.on_recover.append(lambda: self._spawn_replay(node_id))
        if self.runtime.cluster.node(node_id).alive:
            # Primary came back between the failed call and the ack (or was
            # merely unreachable, not crashed): replay immediately.
            self._spawn_replay(node_id)

    def _spawn_replay(self, node_id: int) -> None:
        if not self._replay.get(node_id) or node_id in self._replaying:
            return
        self._replaying.add(node_id)
        self.runtime.sim.process(
            self._replay_body(node_id), name=f"{self.name}-replay-{node_id}"
        )

    def _replay_body(self, node_id: int):
        """Drain the replay queue for a recovered primary, in FIFO order."""
        records = self._replay.get(node_id)
        client = self.runtime.client(node_id)
        try:
            while records:
                part_index, op, args, token = records[0]
                try:
                    yield from client.call(
                        node_id,
                        f"{self.name}.{op}:replica",
                        (part_index, *args),
                        token=token,
                    )
                except ConnectionError:
                    # Crashed again mid-replay; the remaining records stay
                    # queued and the next recovery hook resumes the drain.
                    return
                records.pop(0)
                self.replayed_writes.add(1)
        finally:
            self._replaying.discard(node_id)

    def _execute_async(self, rank: int, part: Partition, op: str, args: tuple,
                       payload_bytes: int) -> RPCFuture:
        """Asynchronous variant: returns a future immediately.

        Local operations still complete through a spawned process so that
        their memory cost lands on the timeline.
        """
        if self.sim_only:
            args = self._stub_args(op, args)
        caller_node = self.runtime.cluster.node_of_rank(rank)
        if caller_node == part.node_id:
            fut = RPCFuture(self.runtime.sim, f"{self.name}.{op}")

            def local_body():
                try:
                    value = yield from self._execute(
                        rank, part, op, args, payload_bytes
                    )
                    fut._complete(value)
                except BaseException as err:  # noqa: BLE001
                    fut._error(err)

            self.runtime.sim.process(local_body(), name=f"local-{op}")
            return fut
        if self._coalescer is not None and op != "batch":
            if (self._cache is not None and self._cache._entries and args
                    and op in self.KEYED_MUTATIONS):
                self._cache.invalidate_key(caller_node, part.index, args[0])
            # Program order vs. buffered ops: fold this op into a pending
            # buffer (it rides the flush batch, same single invocation)...
            folded = self._coalescer.fold(
                rank, caller_node, part, op, args, payload_bytes
            )
            if folded is not None:
                return folded
            # ...or, with a flush still in flight to this partition, run
            # through a drained _execute so it cannot overtake the flush.
            if self._coalescer.inflight_for(caller_node, part.index):
                return self._spawn_call(rank, part, op, args, payload_bytes)
        self.remote_calls.add(1)
        client = self.runtime.client(caller_node)
        return client.invoke(
            part.node_id,
            f"{self.name}.{op}",
            (part.index, *args),
            payload_size=payload_bytes,
            fused=(self.batch_charge and op == "batch"),
            stream=part.index,
        )

    def _pipeline_op(self, rank: int, part: Partition, op: str, args: tuple,
                     payload_bytes: int) -> RPCFuture:
        """Pipelined async mutation: always buffer when a coalescer exists.

        The workhorse of the ``async_insert``/``async_rmw`` API: unlike
        :meth:`_execute_async` (which folds into a pending buffer but issues
        a lone direct invocation otherwise), a pipelined op *always* rides
        the write-combining buffer of its destination — including same-node
        partitions, where batching per-op futures into one locally-executed
        flush replaces a spawned process per op.  An upsert storm becomes a
        stream of full batches with one per-op future each.  With no
        coalescer it degrades to :meth:`_execute_async`; ordering against
        non-pipelined ops is guaranteed only at ``flush``/drain sync points.
        """
        coal = self._coalescer
        if coal is None:
            return self._execute_async(rank, part, op, args, payload_bytes)
        if self.sim_only and op in self.SIM_ONLY_VALUE_ARGS:
            args = self._stub_args(op, args)
        caller_node = self._rank_home[rank]
        cache = self._cache
        # ``_entries`` empty means nothing can need invalidating — write
        # storms skip the per-op tuple build + lookup entirely.
        if (cache is not None and cache._entries and args
                and op in self.KEYED_MUTATIONS):
            cache.invalidate_key(caller_node, part.index, args[0])
        return coal.append_async(
            rank, caller_node, part, op, args, payload_bytes
        )

    # -- client-side aggregation (Section III-C3, Table I amortization) ----------
    def _spawn_call(self, rank: int, part: Partition, op: str, args: tuple,
                    payload_bytes: int, _drain: bool = True,
                    trace_parent=None) -> RPCFuture:
        """Run a full-semantics ``_execute`` behind a future.

        Used for coalescer flushes and ordering-sensitive async ops: the
        spawned process gets the drain/failover/idempotency-token behavior
        of the synchronous path.
        """
        fut = RPCFuture(self.runtime.sim, f"{self.name}.{op}")

        def body():
            try:
                value = yield from self._execute(
                    rank, part, op, args, payload_bytes, _drain=_drain,
                    trace_parent=trace_parent,
                )
                fut._complete(value)
            except BaseException as err:  # noqa: BLE001
                fut._error(err)

        self.runtime.sim.process(body(), name=f"{self.name}-{op}-agg")
        return fut

    def _spawn_batch(self, rank: int, part: Partition, subops,
                     payload_bytes: int, trace_parent=None) -> RPCFuture:
        """One coalescer flush: ship ``subops`` as a single invocation."""
        return self._spawn_call(
            rank, part, "batch", (list(subops),), payload_bytes,
            _drain=False, trace_parent=trace_parent,
        )

    def _buffer_op(self, rank: int, part: Partition, op: str, args: tuple,
                   payload_bytes: int):
        """Generator: write-combine ``op`` when aggregation is on.

        With aggregation off — or for a same-node partition, where the
        hybrid access model already bypasses the RPC machinery — this is
        exactly ``_execute``.  Otherwise the op lands in the destination
        buffer (returning None immediately); it is applied by the next
        threshold or sync-point flush.
        """
        if self.sim_only:
            args = self._stub_args(op, args)
        caller_node = self.runtime.cluster.node_of_rank(rank)
        if self._coalescer is None or caller_node == part.node_id:
            result = yield from self._execute(
                rank, part, op, args, payload_bytes
            )
            return result
        if (self._cache is not None and self._cache._entries and args
                and op in self.KEYED_MUTATIONS):
            self._cache.invalidate_key(caller_node, part.index, args[0])
        self._coalescer.append(
            rank, caller_node, part, op, args, payload_bytes
        )
        return None

    def flush(self, rank: int):
        """Generator: mandatory sync point — flush and await buffered ops."""
        if self._coalescer is not None:
            yield from self._coalescer.drain(rank)

    def aggregation_report(self) -> Dict[str, Any]:
        """Flush / ops-per-flush / cache-hit counters (Fig-4-style rows)."""
        report: Dict[str, Any] = {}
        if self._coalescer is not None:
            report["aggregation"] = self._coalescer.report()
        if self._cache is not None:
            report["read_cache"] = self._cache.report()
        return report

    # -- batched multi-ops -------------------------------------------------------
    # "Callbacks ... are extremely powerful in cases where we want to
    # aggregate multiple data-local operations together ... mapping several
    # spatially located updates to be performed with one call" (III-C3).
    # ``_do_batch`` executes a list of sub-operations against one partition
    # under a single invocation; subclasses expose a keyed ``batch`` API.

    def _do_batch(self, part: "Partition", subops):
        from repro.structures.stats import OpStats

        results = []
        append = results.append
        worst_bytes = 16
        dispatch: dict = {}
        # Plain-int accumulation: one OpStats at the end instead of an
        # absorb call per sub-op — this loop runs once per buffered op on
        # every aggregated hot path.
        local_ops = reads = writes = cas = reloc = rentries = 0
        resized = False
        for op, args in subops:
            entry = dispatch.get(op)
            if entry is None:
                if op == "batch":
                    raise ValueError("nested batches are not allowed")
                method = getattr(self, f"_do_{op}", None)
                if method is None:
                    raise KeyError(f"unknown sub-operation {op!r}")
                entry = dispatch[op] = (method, self._is_mutation(op))
            method, is_mutation = entry
            result, stats, entry_bytes = method(part, *args)
            if is_mutation:
                part.write_epoch += 1
            append(result)
            if stats is not None:
                local_ops += stats.local_ops
                reads += stats.reads
                writes += stats.writes
                cas += stats.cas_ops
                reloc += stats.relocations
                if stats.resized:
                    resized = True
                rentries += stats.resize_entries
            if entry_bytes > worst_bytes:
                worst_bytes = entry_bytes
        total = OpStats(local_ops, reads, writes, cas, reloc, resized,
                        rentries)
        return results, total, worst_bytes

    def _keyed_batch(self, rank: int, ops):
        """Generator: group keyed sub-ops by partition, one invocation each.

        Shared by every container with a ``partition_for`` (hash and
        ordered); results return in the callers' original order.

        With a read cache, ``find`` sub-ops bound for remote partitions are
        served from cache when the epoch still matches, and misses fill the
        cache on return.  With ``write_failover``, each per-partition batch
        runs through the full ``_execute`` semantics so a dead primary
        fails over to a replica exactly like a single op.
        """
        from repro.serialization.databox import estimate_size

        caller_node = self.runtime.cluster.node_of_rank(rank)
        if self._coalescer is not None:
            # A keyed batch is a sync point: buffered ops land first.
            yield from self._coalescer.drain(rank)
        groups = {}
        for idx, entry in enumerate(ops):
            op, key, *rest = entry
            args = (key, *rest)
            if self.sim_only:
                args = self._stub_args(op, args)
            part = self.partition_for(key)
            groups.setdefault(part.index, (part, []))[1].append(
                (idx, op, args)
            )
        results = [None] * len(ops)
        futures = []
        for part, members in groups.values():
            epoch_before = part.write_epoch
            if self._cache is not None and caller_node != part.node_id:
                pending = []
                for idx, op, args in members:
                    if op == "find":
                        hit = self._cache.lookup(caller_node, part, args[0])
                        if hit is not MISS:
                            results[idx] = hit
                            continue
                    elif op in self.KEYED_MUTATIONS:
                        self._cache.invalidate_key(
                            caller_node, part.index, args[0]
                        )
                    pending.append((idx, op, args))
                members = pending
                if not members:
                    continue
            subops = [(op, args) for _idx, op, args in members]
            payload = sum(
                sum(estimate_size(a) for a in args)
                for _i, _op, args in members
            )
            if self.write_failover:
                fut = self._spawn_call(
                    rank, part, "batch", (subops,), payload, _drain=False
                )
            else:
                fut = self._execute_async(
                    rank, part, "batch", (subops,), payload
                )
            futures.append((fut, members, part, epoch_before))
        for fut, members, part, epoch_before in futures:
            yield fut.wait()
            cache_remote = (
                self._cache is not None and caller_node != part.node_id
            )
            for (idx, op, args), result in zip(members, fut.result):
                results[idx] = result
                if cache_remote and op == "find":
                    self._cache.fill(
                        caller_node, part, args[0], result, epoch_before
                    )
            if cache_remote:
                self._cache.observe(
                    caller_node, part.index, part.write_epoch
                )
        return results

    # -- replication ----------------------------------------------------------------
    def _replicate(self, part: Partition, op: str, args: tuple) -> None:
        """Asynchronously re-execute a mutation on the next partitions.

        "Replication occurs asynchronously at the server side, where the
        target process will further hash an operation to more servers."
        """
        nparts = len(self.partitions)
        if nparts < 2:
            return
        client = self.runtime.client(part.node_id)
        for step in range(1, self.replication + 1):
            replica = self.partitions[(part.index + step) % nparts]
            if replica.index == part.index:
                continue
            if replica.node_id == part.node_id:
                # Same node: apply directly (no network), zero-cost async.
                method = getattr(self, f"_do_{op}")
                method(replica, *args)
                if op != "batch":
                    replica.write_epoch += 1
            else:
                client.invoke(
                    replica.node_id,
                    f"{self.name}.{op}:replica",
                    (replica.index, *args),
                )

    def _bind_replica_handlers(self) -> None:
        """Bind no-fanout variants used as replication targets."""
        bound_nodes = set()
        for part in self.partitions:
            if part.node_id in bound_nodes:
                continue
            bound_nodes.add(part.node_id)
            server = self.runtime.server(part.node_id)
            for op in self.OPERATIONS:
                if not self._is_mutation(op):
                    continue
                server.bind(
                    f"{self.name}.{op}:replica", self._make_replica_handler(op)
                )

    def _make_replica_handler(self, op: str) -> Callable:
        method = getattr(self, f"_do_{op}")

        def handler(ctx, part_index, *args):
            part = self.partitions[part_index]
            result, stats, entry_bytes = method(part, *args)
            if op != "batch":
                part.write_epoch += 1  # replica handlers are all mutations
            if stats is not None:
                yield from charge(ctx.node, stats, entry_bytes,
                                  cpu_factor=ctx.cost.nic_compute_factor)
            return result

        return handler

    # -- persistence -------------------------------------------------------------------
    def recover_from_logs(self) -> int:
        """Replay each partition's backing log into its structure.

        Called at construction when ``recover=True``: the container comes
        back with the exact pre-crash contents (inserts, upserts, erases,
        pushes... replayed in order).  Returns the number of operations
        replayed.  Replay happens at time zero — recovery cost is an
        offline property, not part of the measured experiments.

        Keys round-trip through the container's codec: use codec-stable
        key types (str / int / bytes) for persisted containers — msgpack,
        like any serialization wire format, decodes tuples as lists.
        """
        replayed = 0
        for part in self.partitions:
            log = part.segment.log
            if log is None:
                continue
            for record in log.records():
                op, args = DataBox.decode(record.payload, self.codec).value
                method = getattr(self, f"_do_{op}", None)
                if method is None:
                    raise ValueError(
                        f"log for {self.name!r} contains unknown op {op!r}"
                    )
                method(part, *args)
                if op != "batch":
                    part.write_epoch += 1
                replayed += 1
        return replayed

    def _persist(self, part: Partition, op: str, args: tuple, node):
        if part.segment.log is None:
            return
        box = DataBox([op, list(args)], codec=self.codec)
        payload = box.encode()
        part.segment.persist(payload)
        if not part.segment.log.relaxed:
            yield node.sim.timeout(node.cost.persist(len(payload)))
        # Relaxed mode: the kernel flushes in the background; no foreground
        # cost is charged (Section III-C6's tunable synchronization).

    # -- memory growth --------------------------------------------------------------------
    def _grow_segment_if_resized(self, part: Partition, stats: OpStats,
                                 entry_bytes: int) -> None:
        """Mirror a structure resize into segment/node memory accounting."""
        if not stats.resized:
            return
        need = self._structure_bytes(part, entry_bytes)
        if need > part.segment.size:
            part.segment.grow(need)

    def _structure_bytes(self, part: Partition, entry_bytes: int) -> int:
        """Estimated footprint of the partition structure; overridable."""
        n = len(part.structure)
        return max(64 * 1024, 2 * n * max(entry_bytes, 64))

    # -- introspection ----------------------------------------------------------------------
    def partition_of_node(self, node_id: int) -> Optional[Partition]:
        for part in self.partitions:
            if part.node_id == node_id:
                return part
        return None

    def total_entries(self) -> int:
        return sum(len(p.structure) for p in self.partitions)

    def memory_footprint(self) -> int:
        return sum(p.segment.size for p in self.partitions)

    @staticmethod
    def _entry_bytes(*values: Any) -> int:
        # Inlined str/int fast paths: this runs twice per op (payload
        # sizing at the caller, entry sizing at the target) on every
        # container hot path, and keys are overwhelmingly strings or ints.
        total = 0
        for v in values:
            t = type(v)
            if t is str:
                total += 4 + len(v)
            elif t is int:
                total += 8
            else:
                total += estimate_size(v)
        return total

    def close(self) -> None:
        if self._coalescer is not None:
            pending = self._coalescer.pending_total()
            if pending:
                raise RuntimeError(
                    f"container {self.name!r} destroyed with {pending} "
                    "buffered operation(s) unflushed; yield from "
                    "container.flush(rank) (or hit a barrier) before close"
                )
        for part in self.partitions:
            part.segment.close()

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<{type(self).__name__} {self.name!r} "
            f"partitions={len(self.partitions)} entries={self.total_entries()}>"
        )
