"""Base machinery shared by all HCL distributed containers.

A container owns one partition per hosting node slot.  Each
:class:`Partition` couples a *real* local structure (cuckoo / rbtree /
queue / mdlist) with a :class:`~repro.memory.segment.MemorySegment` for
memory accounting and optional persistence.

The **hybrid data access model** (Section III-C5) lives in
:meth:`DistributedContainer._execute`: if the target partition's node equals
the calling rank's node, the operation bypasses the RPC machinery entirely
and runs against shared memory (charging only the structure's local-memory
cost); otherwise a single RoR invocation ships the operation to the target
NIC.

Replication (Section III-A4) is asynchronous and server-side: after a
mutating handler completes, the hosting node re-invokes the operation on
the next ``replication`` partitions without the caller waiting.

Persistence (Section III-C6): mutating handlers append a DataBox record to
the partition's mmap-backed log and charge the device sync cost
(per-operation in strict mode, batched in relaxed mode).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.costs import CostLedger, charge
from repro.memory.segment import MemorySegment
from repro.rpc.future import RPCFuture
from repro.serialization.databox import DataBox, estimate_size
from repro.simnet.stats import Counter
from repro.structures.stats import OpStats

__all__ = ["Partition", "DistributedContainer"]


class Partition:
    """One partition: a local structure on a node, plus its segment.

    ``index`` is the positional slot in the container's partition list
    (used for RPC routing) and may change when partitions are removed;
    ``uid`` is a stable identity assigned at creation, used by the
    rendezvous hash so that membership changes move a minimal key set.
    """

    def __init__(self, index: int, node_id: int, structure: Any,
                 segment: MemorySegment, uid: int = None):
        self.index = index
        self.uid = uid if uid is not None else index
        self.node_id = node_id
        self.structure = structure
        self.segment = segment
        self.ops = Counter(f"part{index}/ops")

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Partition {self.index} on node {self.node_id}>"


class DistributedContainer:
    """Common behaviour for all HCL DDSs."""

    #: subclasses list their operation names, e.g. ("insert", "find", ...)
    OPERATIONS: Tuple[str, ...] = ()

    #: concurrency-control levels (Section III-D: "HCL allows its users to
    #: tune the level of atomicity by setting the appropriate concurrency
    #: control parameter").  ``lockfree`` relies on the lock-free local
    #: structures (default); ``mutex`` serializes every operation on a
    #: partition behind one lock — stronger isolation, lower concurrency.
    CONCURRENCY_LEVELS = ("lockfree", "mutex")

    def __init__(
        self,
        runtime,
        name: str,
        partitions: Sequence[Partition],
        codec: str = "msgpack",
        replication: int = 0,
        persistence: bool = False,
        concurrency: str = "lockfree",
        write_failover: bool = False,
    ):
        if concurrency not in self.CONCURRENCY_LEVELS:
            raise ValueError(
                f"concurrency must be one of {self.CONCURRENCY_LEVELS}"
            )
        if write_failover and replication <= 0:
            raise ValueError("write_failover requires replication >= 1")
        self.runtime = runtime
        self.name = name
        self.partitions: List[Partition] = list(partitions)
        self.codec = codec
        self.replication = replication
        self.persistence = persistence
        self.concurrency = concurrency
        #: opt-in: redirect acked writes to a replica while the primary is
        #: down, then replay them onto the primary when it restarts.  Off by
        #: default — the classic contract is that mutations to a dead
        #: primary fail loudly.
        self.write_failover = write_failover
        self.ledger = CostLedger()
        self.local_hits = Counter(f"{name}/local")
        self.remote_calls = Counter(f"{name}/remote")
        self.failover_reads = Counter(f"{name}/failover_reads")
        self.failover_writes = Counter(f"{name}/failover_writes")
        self.replayed_writes = Counter(f"{name}/replayed_writes")
        #: node_id -> [(part_index, op, args, token), ...] awaiting replay
        self._replay: Dict[int, List[tuple]] = {}
        self._replay_hooked: set = set()
        self._replaying: set = set()
        if concurrency == "mutex":
            from repro.simnet.sync import SimLock

            self._mutexes = {
                part.index: SimLock(runtime.sim, name=f"{name}.{part.index}")
                for part in self.partitions
            }
        else:
            self._mutexes = {}
        self._bind_handlers()

    def _mutex_of(self, part: "Partition"):
        if self.concurrency != "mutex":
            return None
        lock = self._mutexes.get(part.index)
        if lock is None:  # partitions added dynamically
            from repro.simnet.sync import SimLock

            lock = SimLock(self.runtime.sim, name=f"{self.name}.{part.index}")
            self._mutexes[part.index] = lock
        return lock

    # -- wiring -------------------------------------------------------------
    def _bind_handlers(self) -> None:
        """Bind one handler per (operation, hosting node)."""
        bound_nodes = set()
        for part in self.partitions:
            if part.node_id in bound_nodes:
                continue
            bound_nodes.add(part.node_id)
            server = self.runtime.server(part.node_id)
            for op in self.OPERATIONS:
                server.bind(f"{self.name}.{op}", self._make_handler(op))

    def _make_handler(self, op: str) -> Callable:
        method = getattr(self, f"_do_{op}")

        def handler(ctx, part_index, *args):
            part = self.partitions[part_index]
            mutex = self._mutex_of(part)
            if mutex is not None:
                yield mutex.acquire()
                # lock/unlock themselves are atomic RMWs on the NIC core
                yield ctx.sim.timeout(
                    2 * ctx.cost.cas_local * ctx.cost.nic_compute_factor
                )
            try:
                result, stats, entry_bytes = method(part, *args)
                if stats is not None:
                    # Executed on the NIC core: compute terms run slower.
                    yield from charge(ctx.node, stats, entry_bytes,
                                      cpu_factor=ctx.cost.nic_compute_factor)
            finally:
                if mutex is not None:
                    mutex.release()
            self.ledger.record(f"{op}", stats, remote=True)
            part.ops.add(1)
            if self.persistence and self._is_mutation(op):
                yield from self._persist(part, op, args, ctx.node)
            if self.replication and self._is_mutation(op):
                self._replicate(part, op, args)
            return result

        return handler

    #: operations that never mutate (skip persistence/replication fan-out)
    READ_ONLY_OPS = frozenset(
        {"find", "contains", "size", "peek", "range_find", "min_key",
         "max_key", "scan"}
    )

    @classmethod
    def _is_mutation(cls, op: str) -> bool:
        return op not in cls.READ_ONLY_OPS

    # -- the hybrid access core -------------------------------------------------
    def _execute(self, rank: int, part: Partition, op: str, args: tuple,
                 payload_bytes: int):
        """Generator: run ``op`` on ``part`` from ``rank`` — local or remote.

        This is the locality decision of Section III-C5: same node => direct
        shared-memory access (no RPC, no NIC); different node => one RoR
        invocation.
        """
        caller_node = self.runtime.cluster.node_of_rank(rank)
        if caller_node == part.node_id:
            self.local_hits.add(1)
            node = self.runtime.cluster.node(caller_node)
            method = getattr(self, f"_do_{op}")
            mutex = self._mutex_of(part)
            if mutex is not None:
                yield mutex.acquire()
            try:
                result, stats, entry_bytes = method(part, *args)
                if stats is not None:
                    yield from charge(node, stats, entry_bytes)
            finally:
                if mutex is not None:
                    mutex.release()
            self.ledger.record(op, stats, remote=False)
            part.ops.add(1)
            if self.persistence and self._is_mutation(op):
                yield from self._persist(part, op, args, node)
            if self.replication and self._is_mutation(op):
                self._replicate(part, op, args)
            return result
        self.remote_calls.add(1)
        client = self.runtime.client(caller_node)
        mutation = self._is_mutation(op)
        token = None
        if (
            mutation
            and self.write_failover
            and (self.runtime.cluster.faults is not None
                 or not self.runtime.cluster.node(part.node_id).alive)
        ):
            # Pre-assign the idempotency token so a write replayed onto the
            # restarted primary dedups against a late execution of this
            # very request (and vice versa).
            token = client.next_token()
        try:
            result = yield from client.call(
                part.node_id,
                f"{self.name}.{op}",
                (part.index, *args),
                payload_size=payload_bytes,
                token=token,
            )
            return result
        except ConnectionError:
            # Primary down: replicated containers serve reads from the
            # next replica(s) in the hash chain (Section III-A4).
            if self.replication <= 0:
                raise
            if mutation:
                if not self.write_failover:
                    raise
                result = yield from self._failover_write(
                    client, part, op, args, payload_bytes, token
                )
                return result
            result = yield from self._read_from_replica(
                client, part, op, args, payload_bytes
            )
            self.failover_reads.add(1)
            return result

    def _read_from_replica(self, client, part, op, args, payload_bytes):
        from repro.fabric.node import NodeDownError

        nparts = len(self.partitions)
        last_error: Optional[BaseException] = None
        for step in range(1, self.replication + 1):
            replica = self.partitions[(part.index + step) % nparts]
            if not self.runtime.cluster.node(replica.node_id).alive:
                continue
            try:
                result = yield from client.call(
                    replica.node_id,
                    f"{self.name}.{op}",
                    (replica.index, *args),
                    payload_size=payload_bytes,
                )
                return result
            except ConnectionError as err:  # replica died too; keep going
                last_error = err
        raise last_error or NodeDownError(
            f"{self.name}.{op}: primary and all {self.replication} "
            "replicas are down"
        )

    # -- write failover + replay ------------------------------------------------
    def _failover_write(self, client, part, op, args, payload_bytes, token):
        """Apply a mutation to a live replica while the primary is down.

        The write is acked to the caller once one replica accepts it; the
        operation is then queued for replay onto the primary, which runs as
        soon as the primary restarts.  The replay reuses ``token`` — the
        *original* request's idempotency token — so if the primary executed
        the original request late (completion lost, budget exhausted) the
        replay is suppressed server-side rather than double-applied.
        """
        from repro.fabric.node import NodeDownError

        nparts = len(self.partitions)
        last_error: Optional[BaseException] = None
        for step in range(1, self.replication + 1):
            replica = self.partitions[(part.index + step) % nparts]
            if replica.index == part.index:
                continue
            if not self.runtime.cluster.node(replica.node_id).alive:
                continue
            try:
                result = yield from client.call(
                    replica.node_id,
                    f"{self.name}.{op}:replica",
                    (replica.index, *args),
                    payload_size=payload_bytes,
                )
            except ConnectionError as err:  # replica died too; keep going
                last_error = err
                continue
            self.failover_writes.add(1)
            self._queue_replay(part, op, args, token)
            return result
        raise last_error or NodeDownError(
            f"{self.name}.{op}: primary and all {self.replication} "
            "replicas are down"
        )

    def _queue_replay(self, part, op, args, token) -> None:
        """Remember an acked-on-replica write for replay onto the primary."""
        node_id = part.node_id
        self._replay.setdefault(node_id, []).append(
            (part.index, op, args, token)
        )
        if node_id not in self._replay_hooked:
            self._replay_hooked.add(node_id)
            node = self.runtime.cluster.node(node_id)
            node.on_recover.append(lambda: self._spawn_replay(node_id))
        if self.runtime.cluster.node(node_id).alive:
            # Primary came back between the failed call and the ack (or was
            # merely unreachable, not crashed): replay immediately.
            self._spawn_replay(node_id)

    def _spawn_replay(self, node_id: int) -> None:
        if not self._replay.get(node_id) or node_id in self._replaying:
            return
        self._replaying.add(node_id)
        self.runtime.sim.process(
            self._replay_body(node_id), name=f"{self.name}-replay-{node_id}"
        )

    def _replay_body(self, node_id: int):
        """Drain the replay queue for a recovered primary, in FIFO order."""
        records = self._replay.get(node_id)
        client = self.runtime.client(node_id)
        try:
            while records:
                part_index, op, args, token = records[0]
                try:
                    yield from client.call(
                        node_id,
                        f"{self.name}.{op}:replica",
                        (part_index, *args),
                        token=token,
                    )
                except ConnectionError:
                    # Crashed again mid-replay; the remaining records stay
                    # queued and the next recovery hook resumes the drain.
                    return
                records.pop(0)
                self.replayed_writes.add(1)
        finally:
            self._replaying.discard(node_id)

    def _execute_async(self, rank: int, part: Partition, op: str, args: tuple,
                       payload_bytes: int) -> RPCFuture:
        """Asynchronous variant: returns a future immediately.

        Local operations still complete through a spawned process so that
        their memory cost lands on the timeline.
        """
        caller_node = self.runtime.cluster.node_of_rank(rank)
        if caller_node == part.node_id:
            fut = RPCFuture(self.runtime.sim, f"{self.name}.{op}")

            def local_body():
                try:
                    value = yield from self._execute(
                        rank, part, op, args, payload_bytes
                    )
                    fut._complete(value)
                except BaseException as err:  # noqa: BLE001
                    fut._error(err)

            self.runtime.sim.process(local_body(), name=f"local-{op}")
            return fut
        self.remote_calls.add(1)
        client = self.runtime.client(caller_node)
        return client.invoke(
            part.node_id,
            f"{self.name}.{op}",
            (part.index, *args),
            payload_size=payload_bytes,
        )

    # -- batched multi-ops -------------------------------------------------------
    # "Callbacks ... are extremely powerful in cases where we want to
    # aggregate multiple data-local operations together ... mapping several
    # spatially located updates to be performed with one call" (III-C3).
    # ``_do_batch`` executes a list of sub-operations against one partition
    # under a single invocation; subclasses expose a keyed ``batch`` API.

    def _do_batch(self, part: "Partition", subops):
        from repro.structures.stats import OpStats

        results = []
        total = OpStats()
        worst_bytes = 16
        for op, args in subops:
            if op == "batch":
                raise ValueError("nested batches are not allowed")
            method = getattr(self, f"_do_{op}", None)
            if method is None:
                raise KeyError(f"unknown sub-operation {op!r}")
            result, stats, entry_bytes = method(part, *args)
            results.append(result)
            if stats is not None:
                total = total.merge(stats)
            worst_bytes = max(worst_bytes, entry_bytes)
        return results, total, worst_bytes

    def _keyed_batch(self, rank: int, ops):
        """Generator: group keyed sub-ops by partition, one invocation each.

        Shared by every container with a ``partition_for`` (hash and
        ordered); results return in the callers' original order.
        """
        from repro.serialization.databox import estimate_size

        groups = {}
        for idx, entry in enumerate(ops):
            op, key, *rest = entry
            part = self.partition_for(key)
            groups.setdefault(part.index, (part, []))[1].append(
                (idx, op, (key, *rest))
            )
        results = [None] * len(ops)
        futures = []
        for part, members in groups.values():
            subops = [(op, args) for _idx, op, args in members]
            payload = sum(
                sum(estimate_size(a) for a in args)
                for _i, _op, args in members
            )
            fut = self._execute_async(rank, part, "batch", (subops,), payload)
            futures.append((fut, members))
        for fut, members in futures:
            yield fut.wait()
            for (idx, _op, _args), result in zip(members, fut.result):
                results[idx] = result
        return results

    # -- replication ----------------------------------------------------------------
    def _replicate(self, part: Partition, op: str, args: tuple) -> None:
        """Asynchronously re-execute a mutation on the next partitions.

        "Replication occurs asynchronously at the server side, where the
        target process will further hash an operation to more servers."
        """
        nparts = len(self.partitions)
        if nparts < 2:
            return
        client = self.runtime.client(part.node_id)
        for step in range(1, self.replication + 1):
            replica = self.partitions[(part.index + step) % nparts]
            if replica.index == part.index:
                continue
            if replica.node_id == part.node_id:
                # Same node: apply directly (no network), zero-cost async.
                method = getattr(self, f"_do_{op}")
                method(replica, *args)
            else:
                client.invoke(
                    replica.node_id,
                    f"{self.name}.{op}:replica",
                    (replica.index, *args),
                )

    def _bind_replica_handlers(self) -> None:
        """Bind no-fanout variants used as replication targets."""
        bound_nodes = set()
        for part in self.partitions:
            if part.node_id in bound_nodes:
                continue
            bound_nodes.add(part.node_id)
            server = self.runtime.server(part.node_id)
            for op in self.OPERATIONS:
                if not self._is_mutation(op):
                    continue
                server.bind(
                    f"{self.name}.{op}:replica", self._make_replica_handler(op)
                )

    def _make_replica_handler(self, op: str) -> Callable:
        method = getattr(self, f"_do_{op}")

        def handler(ctx, part_index, *args):
            part = self.partitions[part_index]
            result, stats, entry_bytes = method(part, *args)
            if stats is not None:
                yield from charge(ctx.node, stats, entry_bytes,
                                  cpu_factor=ctx.cost.nic_compute_factor)
            return result

        return handler

    # -- persistence -------------------------------------------------------------------
    def recover_from_logs(self) -> int:
        """Replay each partition's backing log into its structure.

        Called at construction when ``recover=True``: the container comes
        back with the exact pre-crash contents (inserts, upserts, erases,
        pushes... replayed in order).  Returns the number of operations
        replayed.  Replay happens at time zero — recovery cost is an
        offline property, not part of the measured experiments.

        Keys round-trip through the container's codec: use codec-stable
        key types (str / int / bytes) for persisted containers — msgpack,
        like any serialization wire format, decodes tuples as lists.
        """
        replayed = 0
        for part in self.partitions:
            log = part.segment.log
            if log is None:
                continue
            for record in log.records():
                op, args = DataBox.decode(record.payload, self.codec).value
                method = getattr(self, f"_do_{op}", None)
                if method is None:
                    raise ValueError(
                        f"log for {self.name!r} contains unknown op {op!r}"
                    )
                method(part, *args)
                replayed += 1
        return replayed

    def _persist(self, part: Partition, op: str, args: tuple, node):
        if part.segment.log is None:
            return
        box = DataBox([op, list(args)], codec=self.codec)
        payload = box.encode()
        part.segment.persist(payload)
        if not part.segment.log.relaxed:
            yield node.sim.timeout(node.cost.persist(len(payload)))
        # Relaxed mode: the kernel flushes in the background; no foreground
        # cost is charged (Section III-C6's tunable synchronization).

    # -- memory growth --------------------------------------------------------------------
    def _grow_segment_if_resized(self, part: Partition, stats: OpStats,
                                 entry_bytes: int) -> None:
        """Mirror a structure resize into segment/node memory accounting."""
        if not stats.resized:
            return
        need = self._structure_bytes(part, entry_bytes)
        if need > part.segment.size:
            part.segment.grow(need)

    def _structure_bytes(self, part: Partition, entry_bytes: int) -> int:
        """Estimated footprint of the partition structure; overridable."""
        n = len(part.structure)
        return max(64 * 1024, 2 * n * max(entry_bytes, 64))

    # -- introspection ----------------------------------------------------------------------
    def partition_of_node(self, node_id: int) -> Optional[Partition]:
        for part in self.partitions:
            if part.node_id == node_id:
                return part
        return None

    def total_entries(self) -> int:
        return sum(len(p.structure) for p in self.partitions)

    def memory_footprint(self) -> int:
        return sum(p.segment.size for p in self.partitions)

    @staticmethod
    def _entry_bytes(*values: Any) -> int:
        return sum(estimate_size(v) for v in values)

    def close(self) -> None:
        for part in self.partitions:
            part.segment.close()

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<{type(self).__name__} {self.name!r} "
            f"partitions={len(self.partitions)} entries={self.total_entries()}>"
        )
