"""HCL::priority_queue — single-partition MDList queue (Section III-D3-B).

Push places a node in the multi-dimensional list (O(log N)-class cost, the
source of the 30% gap to the FIFO queue in Fig 6c); pop takes the minimum
and relies on the background purge to compact logically-deleted nodes.

Priorities are non-negative integers (they must fit the MDList coordinate
space); values are arbitrary.  ``push(rank, priority, value)`` /
``pop(rank) -> ((priority, value), ok)``.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence, Tuple

from repro.core.container import DistributedContainer, Partition
from repro.rpc.future import RPCFuture
from repro.structures.mdlist import MDListPriorityQueue, PriorityQueueEmpty
from repro.structures.stats import OpStats

__all__ = ["HCLPriorityQueue"]


class HCLPriorityQueue(DistributedContainer):
    """Distributed min-priority queue."""

    OPERATIONS = ("push", "pop", "push_many", "pop_many", "peek", "size",
                  "batch")

    #: push values ride along the priority and are never interpreted
    #: server-side (ordering uses the priority alone).
    SIM_ONLY_VALUE_ARGS = {"push": 1}

    def __init__(self, runtime, name, partitions, **kwargs):
        super().__init__(runtime, name, partitions, **kwargs)
        if len(self.partitions) != 1:
            raise ValueError("HCL::priority_queue is single-partitioned")

    @property
    def home(self) -> Partition:
        return self.partitions[0]

    # -- server-side ops --------------------------------------------------------
    def _maybe_grow(self, part: Partition, entry_bytes: int) -> Optional[OpStats]:
        pq: MDListPriorityQueue = part.structure
        need = 2 * len(pq) * max(64, entry_bytes)
        if need > part.segment.size:
            part.segment.grow(max(need, 2 * part.segment.size))
            return OpStats(resized=True, resize_entries=len(pq))
        return None

    def _do_push(self, part: Partition, priority, value):
        entry_bytes = self._entry_bytes(priority, value)
        stats = part.structure.push(priority, value)
        grow = self._maybe_grow(part, entry_bytes)
        if grow is not None:
            stats = stats.merge(grow)
        return True, stats, entry_bytes

    def _do_pop(self, part: Partition):
        try:
            priority, value, stats = part.structure.pop_min()
        except PriorityQueueEmpty:
            return (None, False), OpStats(local_ops=1), 16
        return ((priority, value), True), stats, self._entry_bytes(priority, value)

    def _do_push_many(self, part: Partition, entries):
        stats = OpStats()
        total_bytes = 16
        for priority, value in entries:
            stats = stats.merge(part.structure.push(priority, value))
            total_bytes += self._entry_bytes(priority, value)
        grow = self._maybe_grow(part, total_bytes // max(1, len(entries)))
        if grow is not None:
            stats = stats.merge(grow)
        return True, stats, max(64, total_bytes // max(1, len(entries)))

    def _do_pop_many(self, part: Partition, count):
        stats = OpStats()
        out = []
        for _ in range(count):
            try:
                priority, value, s = part.structure.pop_min()
            except PriorityQueueEmpty:
                break
            out.append((priority, value))
            stats = stats.merge(s)
        return out, stats, 64

    def _do_peek(self, part: Partition):
        try:
            priority, value = part.structure.peek_min()
        except PriorityQueueEmpty:
            return (None, False), OpStats(local_ops=1), 16
        return ((priority, value), True), OpStats(local_ops=1, reads=1), 64

    def _do_size(self, part: Partition):
        return len(part.structure), OpStats(local_ops=1), 8

    # -- client API -----------------------------------------------------------------
    def push(self, rank: int, priority: int, value: Any = None):
        """Table I: F + L·log(N) + W."""
        result = yield from self._execute(
            rank, self.home, "push", (priority, value),
            payload_bytes=self._entry_bytes(priority, value),
        )
        return result

    def push_async(self, rank: int, priority: int, value: Any = None) -> RPCFuture:
        return self._execute_async(
            rank, self.home, "push", (priority, value),
            self._entry_bytes(priority, value),
        )

    def push_buffered(self, rank: int, priority: int, value: Any = None):
        """Generator: push through the aggregation buffer.

        With ``aggregation=0`` this is exactly :meth:`push`; otherwise
        remote pushes write-combine into one ``batch`` invocation per
        flush (the ISx key-scatter hot path).
        """
        result = yield from self._buffer_op(
            rank, self.home, "push", (priority, value),
            payload_bytes=self._entry_bytes(priority, value),
        )
        return result

    def pop(self, rank: int):
        """Table I: F + L + R.  Returns ``((priority, value), ok)``."""
        result = yield from self._execute(
            rank, self.home, "pop", (), payload_bytes=16
        )
        entry, ok = result
        return (tuple(entry) if ok else None), ok

    def pop_async(self, rank: int) -> RPCFuture:
        return self._execute_async(rank, self.home, "pop", (), 16)

    def push_many(self, rank: int, entries: Sequence[Tuple[int, Any]]):
        """Vector push — Table I: F + L·log(N) + E·W."""
        entries = [tuple(e) for e in entries]
        payload = sum(self._entry_bytes(p, v) for p, v in entries) or 16
        result = yield from self._execute(
            rank, self.home, "push_many", (entries,), payload_bytes=payload
        )
        return result

    def pop_many(self, rank: int, count: int):
        """Vector pop — Table I: F + L + E·R."""
        result = yield from self._execute(
            rank, self.home, "pop_many", (count,), payload_bytes=16
        )
        return [tuple(e) for e in result]

    def peek(self, rank: int):
        result = yield from self._execute(
            rank, self.home, "peek", (), payload_bytes=16
        )
        entry, ok = result
        return (tuple(entry) if ok else None), ok

    def size(self, rank: int):
        result = yield from self._execute(
            rank, self.home, "size", (), payload_bytes=8
        )
        return result
