"""Point-to-point messaging between rank processes.

The paper's introduction lists "data sharing, and process-to-process
lock-free synchronizations" among HCL's target workloads.  This module
provides that primitive — per-rank mailboxes in the global address space —
and an mpi4py-flavoured facade (:class:`Comm`) so MPI-style code ports
directly onto the simulated cluster:

::

    comm = Comm(hcl)

    def body(rank):
        if rank == 0:
            yield from comm.send({"a": 7}, dest=1, tag=11)
        elif rank == 1:
            data = yield from comm.recv(source=0, tag=11)

Transport: a send to a co-located rank goes through shared memory (the
hybrid model again); a remote send is one RDMA SEND into the target node,
where a per-node dispatcher moves it into the destination rank's mailbox.
Receives match on (source, tag) with MPI's ``ANY`` wildcards.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, List, Tuple

from repro.serialization.databox import estimate_size
from repro.simnet.core import Event
from repro.obs.registry import registry_of

__all__ = ["Comm", "ANY_SOURCE", "ANY_TAG"]

ANY_SOURCE = -1
ANY_TAG = -1


class _Mailbox:
    """Matching queue for one rank: (source, tag)-filtered receives."""

    def __init__(self, sim):
        self.sim = sim
        self._messages: Deque[Tuple[int, int, Any]] = deque()
        self._waiters: List[Tuple[int, int, Event]] = []

    def deliver(self, source: int, tag: int, payload: Any) -> None:
        for i, (want_src, want_tag, event) in enumerate(self._waiters):
            if ((want_src == ANY_SOURCE or want_src == source)
                    and (want_tag == ANY_TAG or want_tag == tag)):
                self._waiters.pop(i)
                event.succeed((source, tag, payload))
                return
        self._messages.append((source, tag, payload))

    def match(self, source: int, tag: int) -> Event:
        event = Event(self.sim)
        for i, (msg_src, msg_tag, payload) in enumerate(self._messages):
            if ((source == ANY_SOURCE or source == msg_src)
                    and (tag == ANY_TAG or tag == msg_tag)):
                del self._messages[i]
                event.succeed((msg_src, msg_tag, payload))
                return event
        self._waiters.append((source, tag, event))
        return event


class Comm:
    """An MPI-communicator-like endpoint set over all ranks of a runtime."""

    def __init__(self, runtime, name: str = "comm"):
        self.runtime = runtime
        self.cluster = runtime.cluster
        self.sim = runtime.sim
        self.name = name
        self.size = self.cluster.total_procs
        self._mailboxes: Dict[int, _Mailbox] = {
            rank: _Mailbox(self.sim) for rank in range(self.size)
        }
        metrics = registry_of(self.sim)
        self.messages_sent = metrics.counter(f"{name}/sent")
        self.local_deliveries = metrics.counter(f"{name}/local")
        # One delivery handler per node, bound into the RoR registry: a
        # remote send is an ordinary invocation that posts to the mailbox.
        for node in self.cluster.nodes:
            runtime.server(node.node_id).bind(
                f"{name}.deliver", self._make_deliver_handler()
            )

    def _make_deliver_handler(self):
        def deliver(ctx, dest: int, source: int, tag: int, payload):
            yield ctx.charge_local(2)
            self._mailboxes[dest].deliver(source, tag, payload)
            return True

        return deliver

    # -- MPI-flavoured API (generators) -------------------------------------
    def send(self, payload: Any, dest: int, tag: int = 0, source: int = None,
             rank: int = None):
        """Generator: blocking-ish send (returns once delivered).

        ``rank`` (or ``source``) identifies the calling rank — the mpi4py
        signature has it implicit in the communicator; here processes are
        coroutines, so the caller passes its own rank.
        """
        src = rank if rank is not None else source
        if src is None:
            raise ValueError("send() needs the caller's rank (rank=...)")
        if not 0 <= dest < self.size:
            raise ValueError(f"dest {dest} out of range")
        self.messages_sent.add(1)
        src_node = self.cluster.node_of_rank(src)
        dst_node = self.cluster.node_of_rank(dest)
        if src_node == dst_node:
            # Hybrid model: co-located ranks exchange through shared memory.
            self.local_deliveries.add(1)
            node = self.cluster.node(src_node)
            yield from node.local_copy(max(estimate_size(payload), 16))
            self._mailboxes[dest].deliver(src, tag, payload)
            return
        client = self.runtime.client(src_node)
        yield from client.call(
            dst_node, f"{self.name}.deliver", (dest, src, tag, payload),
            payload_size=estimate_size(payload) + 24,
        )

    def isend(self, payload: Any, dest: int, tag: int = 0, rank: int = None):
        """Non-blocking send; returns a process handle (wait by yielding)."""
        return self.sim.process(
            self.send(payload, dest, tag, rank=rank),
            name=f"isend-{rank}->{dest}",
        )

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG,
             rank: int = None):
        """Generator: blocking receive; returns the payload."""
        if rank is None:
            raise ValueError("recv() needs the caller's rank (rank=...)")
        _src, _tag, payload = yield self._mailboxes[rank].match(source, tag)
        return payload

    def recv_with_status(self, source: int = ANY_SOURCE, tag: int = ANY_TAG,
                         rank: int = None):
        """Generator: like :meth:`recv` but returns (payload, source, tag)."""
        if rank is None:
            raise ValueError("recv() needs the caller's rank (rank=...)")
        src, t, payload = yield self._mailboxes[rank].match(source, tag)
        return payload, src, t

    def sendrecv(self, payload: Any, dest: int, source: int = ANY_SOURCE,
                 tag: int = 0, rank: int = None):
        """Generator: exchange — send to ``dest``, receive one message."""
        handle = self.isend(payload, dest, tag, rank=rank)
        received = yield from self.recv(source=source, tag=tag, rank=rank)
        yield handle
        return received

    def probe(self, rank: int, source: int = ANY_SOURCE,
              tag: int = ANY_TAG) -> bool:
        """Non-blocking: is a matching message already waiting?"""
        box = self._mailboxes[rank]
        return any(
            (source == ANY_SOURCE or source == s)
            and (tag == ANY_TAG or tag == t)
            for s, t, _p in box._messages
        )
