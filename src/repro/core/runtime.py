"""The HCL runtime: cluster + GAS + RPC servers/clients + container factory.

"During initialization, one or more processes in the node can create a
shared memory segment that other processes (both local and remote) can read
and write to by invoking functions" (Section III).  The runtime plays that
role: it owns one RoR server per node, a shared RPC client per node, the
global address space registry, and constructs containers whose partitions it
places round-robin (or explicitly) across nodes.

Container construction needs no coordination: names are the global handle,
and every rank process uses the same container object against its own
node-local view — exactly the "call the constructor and use them" model of
the paper (Fig 3).
"""

from __future__ import annotations

import os
import tempfile
from typing import Callable, Dict, Generator, List, Optional, Sequence, Union

from repro.config import ClusterSpec
from repro.core.container import Partition
from repro.core.hash_container import (
    HCLUnorderedMap,
    HCLUnorderedSet,
    stable_hash,
)
from repro.core.ordered_container import HCLMap, HCLSet
from repro.core.priority_queue import HCLPriorityQueue
from repro.core.queue import HCLQueue
from repro.fabric.topology import Cluster
from repro.memory.gas import GlobalAddressSpace
from repro.memory.segment import MemorySegment
from repro.rpc.client import RpcClient
from repro.rpc.server import RpcServer
from repro.rpc.window import WindowConfig
from repro.structures.cuckoo import CuckooHash
from repro.structures.lfqueue import OptimisticQueue
from repro.structures.mdlist import MDListPriorityQueue
from repro.structures.rbtree import RedBlackTree

__all__ = ["HCL"]

_DEFAULT_SEGMENT = 64 * 1024  # HCL starts partitions small and grows them


class HCL:
    """Top-level entry point of the reproduction library."""

    def __init__(
        self,
        spec_or_cluster: Union[ClusterSpec, Cluster],
        provider: str = "roce",
        rpc_batch_size: int = 1,
        rpc_queue_bound: Optional[int] = None,
        persist_dir: Optional[str] = None,
        fault_plan=None,
        scheduler: str = "calendar",
        window=None,
    ):
        if isinstance(spec_or_cluster, Cluster):
            self.cluster = spec_or_cluster
        else:
            self.cluster = Cluster(spec_or_cluster, provider=provider,
                                   scheduler=scheduler)
        if fault_plan is not None:
            self.cluster.install_faults(fault_plan)
        self.sim = self.cluster.sim
        self.gas = GlobalAddressSpace()
        # rpc_queue_bound arms admission control: each server sheds requests
        # arriving at a full receive queue instead of queueing them forever
        # (callers see a retriable ServerOverloaded).  None = classic
        # unbounded queueing.
        self._servers: Dict[int, RpcServer] = {
            node.node_id: RpcServer(node, batch_size=rpc_batch_size,
                                    queue_bound=rpc_queue_bound)
            for node in self.cluster.nodes
        }
        self._clients: Dict[int, RpcClient] = {}
        self.containers: Dict[str, object] = {}
        self.persist_dir = persist_dir
        self._tmpdir: Optional[tempfile.TemporaryDirectory] = None
        # window arms per-(node, partition) AIMD congestion windows on every
        # client: True for the defaults, or a WindowConfig.  None = classic
        # unbounded issue.
        if window is True:
            window = WindowConfig()
        elif not window:  # False/None both mean "unbounded issue"
            window = None
        self.window_config: Optional[WindowConfig] = window

    # -- plumbing accessors ----------------------------------------------------
    def server(self, node_id: int) -> RpcServer:
        return self._servers[node_id]

    def client(self, node_id: int) -> RpcClient:
        client = self._clients.get(node_id)
        if client is None:
            client = RpcClient(self.cluster, node_id, self._servers,
                               window=self.window_config)
            self._clients[node_id] = client
        return client

    @property
    def spec(self) -> ClusterSpec:
        return self.cluster.spec

    @property
    def num_nodes(self) -> int:
        return self.cluster.num_nodes

    # -- partition construction ---------------------------------------------------
    def _persist_path(self, name: str, index: int) -> Optional[str]:
        if self.persist_dir is None:
            return None
        os.makedirs(self.persist_dir, exist_ok=True)
        return os.path.join(self.persist_dir, f"{name}.part{index}.hcl")

    def _make_partitions(
        self,
        name: str,
        structure_factory: Callable[[], object],
        count: int,
        nodes: Optional[Sequence[int]] = None,
        segment_bytes: int = _DEFAULT_SEGMENT,
        persistence: bool = False,
        relaxed_persistence: bool = False,
    ) -> List[Partition]:
        if name in self.containers:
            raise KeyError(f"container {name!r} already exists")
        if count < 1:
            raise ValueError("need at least one partition")
        placements = (
            list(nodes)
            if nodes is not None
            else [i % self.num_nodes for i in range(count)]
        )
        if len(placements) != count:
            raise ValueError("nodes list must have one entry per partition")
        parts = []
        for index, node_id in enumerate(placements):
            node = self.cluster.node(node_id)
            seg = MemorySegment(
                node,
                segment_bytes,
                name=f"{name}.{index}",
                backing_path=self._persist_path(name, index) if persistence else None,
                relaxed_persistence=relaxed_persistence,
            )
            self.gas.register(seg)
            parts.append(Partition(index, node_id, structure_factory(), seg))
        return parts

    # -- container factories --------------------------------------------------------
    def unordered_map(
        self,
        name: str,
        partitions: Optional[int] = None,
        nodes: Optional[Sequence[int]] = None,
        hash_fn=None,
        initial_buckets: int = CuckooHash.DEFAULT_BUCKETS,
        codec: str = "msgpack",
        replication: int = 0,
        persistence: bool = False,
        relaxed_persistence: bool = False,
        concurrency: str = "lockfree",
        write_failover: bool = False,
        aggregation: int = 0,
        aggregation_bytes: int = 32 * 1024,
        read_cache: bool = False,
        batch_charge: bool = False,
        sim_only: bool = False,
        recover: bool = False,
    ) -> HCLUnorderedMap:
        """An ``HCL::unordered_map`` distributed over ``partitions`` nodes."""
        # Resolve the hash default here so BOTH hashing levels (partition
        # routing and the cuckoo tables) are PYTHONHASHSEED-independent.
        hash_fn = hash_fn or stable_hash
        count = partitions if partitions is not None else self.num_nodes
        parts = self._make_partitions(
            name, lambda: CuckooHash(initial_buckets, hash_fn=hash_fn), count,
            nodes=nodes, persistence=persistence,
            relaxed_persistence=relaxed_persistence,
        )
        container = HCLUnorderedMap(
            self, name, parts, hash_fn=hash_fn, codec=codec,
            replication=replication, persistence=persistence,
            concurrency=concurrency, write_failover=write_failover,
            aggregation=aggregation, aggregation_bytes=aggregation_bytes,
            read_cache=read_cache, batch_charge=batch_charge,
            sim_only=sim_only,
        )
        self.containers[name] = container
        if recover:
            if not persistence:
                raise ValueError("recover=True requires persistence=True")
            container.recover_from_logs()
        return container

    def unordered_set(
        self,
        name: str,
        partitions: Optional[int] = None,
        nodes: Optional[Sequence[int]] = None,
        hash_fn=None,
        initial_buckets: int = CuckooHash.DEFAULT_BUCKETS,
        codec: str = "msgpack",
        replication: int = 0,
        persistence: bool = False,
        relaxed_persistence: bool = False,
        concurrency: str = "lockfree",
        write_failover: bool = False,
        aggregation: int = 0,
        aggregation_bytes: int = 32 * 1024,
        read_cache: bool = False,
        batch_charge: bool = False,
        sim_only: bool = False,
        recover: bool = False,
    ) -> HCLUnorderedSet:
        hash_fn = hash_fn or stable_hash
        count = partitions if partitions is not None else self.num_nodes
        parts = self._make_partitions(
            name, lambda: CuckooHash(initial_buckets, hash_fn=hash_fn), count,
            nodes=nodes, persistence=persistence,
            relaxed_persistence=relaxed_persistence,
        )
        container = HCLUnorderedSet(
            self, name, parts, hash_fn=hash_fn, codec=codec,
            replication=replication, persistence=persistence,
            concurrency=concurrency, write_failover=write_failover,
            aggregation=aggregation, aggregation_bytes=aggregation_bytes,
            read_cache=read_cache, batch_charge=batch_charge,
            sim_only=sim_only,
        )
        self.containers[name] = container
        if recover:
            if not persistence:
                raise ValueError("recover=True requires persistence=True")
            container.recover_from_logs()
        return container

    def map(
        self,
        name: str,
        partitions: Optional[int] = None,
        nodes: Optional[Sequence[int]] = None,
        partitioner=None,
        less=None,
        codec: str = "msgpack",
        replication: int = 0,
        persistence: bool = False,
        relaxed_persistence: bool = False,
        concurrency: str = "lockfree",
        write_failover: bool = False,
        aggregation: int = 0,
        aggregation_bytes: int = 32 * 1024,
        read_cache: bool = False,
        batch_charge: bool = False,
        sim_only: bool = False,
        recover: bool = False,
    ) -> HCLMap:
        """An ``HCL::map`` (ordered) distributed by key-space partitioning."""
        count = partitions if partitions is not None else self.num_nodes
        parts = self._make_partitions(
            name, lambda: RedBlackTree(less=less), count,
            nodes=nodes, persistence=persistence,
            relaxed_persistence=relaxed_persistence,
        )
        container = HCLMap(
            self, name, parts, partitioner=partitioner, less=less, codec=codec,
            replication=replication, persistence=persistence,
            concurrency=concurrency, write_failover=write_failover,
            aggregation=aggregation, aggregation_bytes=aggregation_bytes,
            read_cache=read_cache, batch_charge=batch_charge,
            sim_only=sim_only,
        )
        self.containers[name] = container
        if recover:
            if not persistence:
                raise ValueError("recover=True requires persistence=True")
            container.recover_from_logs()
        return container

    def set(
        self,
        name: str,
        partitions: Optional[int] = None,
        nodes: Optional[Sequence[int]] = None,
        partitioner=None,
        less=None,
        codec: str = "msgpack",
        replication: int = 0,
        persistence: bool = False,
        relaxed_persistence: bool = False,
        concurrency: str = "lockfree",
        write_failover: bool = False,
        aggregation: int = 0,
        aggregation_bytes: int = 32 * 1024,
        read_cache: bool = False,
        batch_charge: bool = False,
        sim_only: bool = False,
        recover: bool = False,
    ) -> HCLSet:
        count = partitions if partitions is not None else self.num_nodes
        parts = self._make_partitions(
            name, lambda: RedBlackTree(less=less), count,
            nodes=nodes, persistence=persistence,
            relaxed_persistence=relaxed_persistence,
        )
        container = HCLSet(
            self, name, parts, partitioner=partitioner, less=less, codec=codec,
            replication=replication, persistence=persistence,
            concurrency=concurrency, write_failover=write_failover,
            aggregation=aggregation, aggregation_bytes=aggregation_bytes,
            read_cache=read_cache, batch_charge=batch_charge,
            sim_only=sim_only,
        )
        self.containers[name] = container
        if recover:
            if not persistence:
                raise ValueError("recover=True requires persistence=True")
            container.recover_from_logs()
        return container

    def queue(
        self,
        name: str,
        home_node: int = 0,
        codec: str = "msgpack",
        persistence: bool = False,
        relaxed_persistence: bool = False,
        concurrency: str = "lockfree",
        aggregation: int = 0,
        aggregation_bytes: int = 32 * 1024,
        read_cache: bool = False,
        batch_charge: bool = False,
        sim_only: bool = False,
        recover: bool = False,
    ) -> HCLQueue:
        """An ``HCL::queue`` hosted on ``home_node`` (single partition)."""
        parts = self._make_partitions(
            name, OptimisticQueue, 1, nodes=[home_node],
            persistence=persistence, relaxed_persistence=relaxed_persistence,
        )
        container = HCLQueue(
            self, name, parts, codec=codec, persistence=persistence,
            concurrency=concurrency,
            aggregation=aggregation, aggregation_bytes=aggregation_bytes,
            read_cache=read_cache, batch_charge=batch_charge,
            sim_only=sim_only,
        )
        self.containers[name] = container
        if recover:
            if not persistence:
                raise ValueError("recover=True requires persistence=True")
            container.recover_from_logs()
        return container

    def priority_queue(
        self,
        name: str,
        home_node: int = 0,
        dims: int = 8,
        base: int = 16,
        codec: str = "msgpack",
        persistence: bool = False,
        relaxed_persistence: bool = False,
        concurrency: str = "lockfree",
        aggregation: int = 0,
        aggregation_bytes: int = 32 * 1024,
        read_cache: bool = False,
        batch_charge: bool = False,
        sim_only: bool = False,
        recover: bool = False,
    ) -> HCLPriorityQueue:
        parts = self._make_partitions(
            name, lambda: MDListPriorityQueue(dims=dims, base=base), 1,
            nodes=[home_node],
            persistence=persistence, relaxed_persistence=relaxed_persistence,
        )
        container = HCLPriorityQueue(
            self, name, parts, codec=codec, persistence=persistence,
            concurrency=concurrency,
            aggregation=aggregation, aggregation_bytes=aggregation_bytes,
            read_cache=read_cache, batch_charge=batch_charge,
            sim_only=sim_only,
        )
        self.containers[name] = container
        if recover:
            if not persistence:
                raise ValueError("recover=True requires persistence=True")
            container.recover_from_logs()
        return container

    # -- aggregation sync points ---------------------------------------------------------
    def flush_containers(self, rank: int):
        """Generator: flush every container's aggregation buffers for
        ``rank``'s node.  Zero-cost no-op when nothing is aggregated —
        barriers call this so buffered ops always land before ranks
        synchronize."""
        for container in self.containers.values():
            coalescer = getattr(container, "_coalescer", None)
            if coalescer is not None:
                yield from coalescer.drain(rank)

    # -- running ranks -----------------------------------------------------------------
    def run_ranks(
        self,
        body: Callable[[int], Generator],
        ranks: Optional[range] = None,
        until: Optional[float] = None,
    ) -> List:
        """Spawn ``body(rank)`` for all ranks, run the sim, return processes.

        Raises if any rank failed; the processes' ``result`` carries each
        rank's return value.
        """
        procs = self.cluster.spawn_ranks(body, ranks=ranks)
        self.cluster.run(until=until)
        for proc in procs:
            if proc.done and not proc.ok:
                raise proc.value
        return procs

    @property
    def now(self) -> float:
        return self.sim.now

    def close(self) -> None:
        for container in self.containers.values():
            container.close()
        self.containers.clear()
