"""HCL — the Hermes Container Library core (the paper's contribution).

Public API::

    from repro.core import HCL
    from repro.config import ares_like

    hcl = HCL(ares_like(nodes=4, procs_per_node=8))
    m = hcl.unordered_map("kv", partitions=4)

    def rank_body(rank):
        ok = yield from m.insert(rank, "key", "value")
        val = yield from m.find(rank, "key")
        ...

    hcl.run_ranks(rank_body)

Containers (Section III-D):

* :meth:`HCL.unordered_map` / :meth:`HCL.unordered_set` — lock-free cuckoo
  hash, multi-partition, two-level hashing;
* :meth:`HCL.map` / :meth:`HCL.set` — red-black tree per partition,
  ordered key-space partitioning;
* :meth:`HCL.queue` — single-partition lock-free FIFO;
* :meth:`HCL.priority_queue` — single-partition MDList.

All containers implement the DataBox abstraction: hybrid local/remote
access, asynchronous futures, callback chaining, optional persistence and
replication, and custom serialization backends.
"""

from repro.core.runtime import HCL
from repro.core.collectives import Collectives
from repro.core.p2p import Comm, ANY_SOURCE, ANY_TAG
from repro.core.container import DistributedContainer, Partition
from repro.core.costs import CostLedger
from repro.core.hash_container import HCLUnorderedMap, HCLUnorderedSet
from repro.core.ordered_container import HCLMap, HCLSet
from repro.core.queue import HCLQueue
from repro.core.priority_queue import HCLPriorityQueue

__all__ = [
    "HCL",
    "Collectives",
    "Comm",
    "ANY_SOURCE",
    "ANY_TAG",
    "DistributedContainer",
    "Partition",
    "CostLedger",
    "HCLUnorderedMap",
    "HCLUnorderedSet",
    "HCLMap",
    "HCLSet",
    "HCLQueue",
    "HCLPriorityQueue",
]
