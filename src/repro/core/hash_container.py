"""HCL::unordered_map and HCL::unordered_set (Section III-D1).

Both are "a single logically contiguous array of buckets distributed
block-wise among multiple partitions in the global address space" with two
levels of hashing: the first chooses the partition, the second locates the
bucket inside it (done by the partition's cuckoo table).  Users can override
the key distribution by passing ``hash_fn`` (the ``std::hash<K>`` override).

Maps store ``(key, value)`` buckets; sets store key-only buckets, which is
why the paper measures sets 7-14% faster (smaller serialization) — here the
value bytes simply drop out of the charged sizes.
"""

from __future__ import annotations

import zlib
from typing import Any, Callable, Hashable, Iterator, Optional, Tuple

from repro.core.container import DistributedContainer, Partition
from repro.rpc.coalesce import MISS
from repro.rpc.future import RPCFuture
from repro.structures.cuckoo import CuckooHash

__all__ = ["HCLUnorderedMap", "HCLUnorderedSet", "stable_hash"]

_MASK64 = (1 << 64) - 1
_GOLDEN64 = 0x9E3779B97F4A7C15


def stable_hash(key: Hashable) -> int:
    """Interpreter-stable key hash (crc32 of the repr).

    The default first-level hash: unlike the builtin ``hash``, it does not
    depend on PYTHONHASHSEED, so partition routing — and therefore every
    simulated timing — is identical across interpreter invocations.  Pass
    ``hash_fn`` to override (the ``std::hash<K>`` customization point).
    """
    return zlib.crc32(repr(key).encode("utf-8"))


class _HashContainerBase(DistributedContainer):
    """Shared two-level-hashing machinery."""

    OPERATIONS = ("insert", "find", "erase", "resize", "upsert", "batch",
                  "scan", "size")

    def _do_size(self, part: Partition):
        from repro.structures.stats import OpStats

        return len(part.structure), OpStats(local_ops=1), 8

    def count(self, rank: int):
        """Generator: total entries across all partitions (fan-out reads)."""
        futures = [
            self._execute_async(rank, part, "size", (), 8)
            for part in self.partitions
        ]
        total = 0
        for fut in futures:
            yield fut.wait()
            total += fut.result
        return total

    # -- distributed iteration (STL-like traversal, batched) -----------------
    def _do_scan(self, part: Partition, cursor: int, count: int):
        """Read ``count`` entries starting at slot ``cursor``.

        Returns ``(items, next_cursor)`` where ``next_cursor`` is -1 when
        the partition is exhausted.  The cursor indexes the cuckoo tables'
        flattened slot array, so a scan is a sequential sweep of the
        partition memory (cheap reads, no per-item hashing).
        """
        from repro.structures.stats import OpStats

        table: CuckooHash = part.structure
        slots = [*table._t0, *table._t1]
        items = []
        pos = cursor
        visited = 0
        while pos < len(slots) and len(items) < count:
            slot = slots[pos]
            if slot is not None:
                items.append(slot)
            pos += 1
            visited += 1
        next_cursor = pos if pos < len(slots) else -1
        stats = OpStats(local_ops=visited, reads=len(items))
        return (items, next_cursor), stats, 64

    def scan(self, rank: int, partition_id: int, cursor: int = 0,
             count: int = 64):
        """Generator: one batched read of a partition's entries."""
        part = self.partitions[partition_id]
        result = yield from self._execute(
            rank, part, "scan", (cursor, count), payload_bytes=16
        )
        items, next_cursor = result
        return [tuple(kv) for kv in items], next_cursor

    def collect_all(self, rank: int, batch: int = 64):
        """Generator: every (key, value) pair in the container, fetched in
        per-partition batches (the distributed-iteration convenience)."""
        out = []
        for part in self.partitions:
            cursor = 0
            while cursor != -1:
                items, cursor = yield from self.scan(
                    rank, part.index, cursor, batch
                )
                out.extend(items)
        return out

    def batch(self, rank: int, ops: "list"):
        """Generator: execute many keyed operations in few invocations.

        ``ops`` is a sequence of tuples — ``("insert", key, value)``,
        ``("find", key)``, ``("erase", key)``, ``("upsert", key, delta)``.
        Operations are grouped by target partition and shipped as ONE
        invocation per partition (the spatial-aggregation win of
        Section III-C3); results come back in the original order.
        """
        results = yield from self._keyed_batch(rank, ops)
        return results

    def _do_upsert(self, part: Partition, key, delta):
        """Read-modify-write executed *at the target* — one invocation.

        The procedural-programming showcase: a client-side library (BCL)
        needs a find round trip plus an insert round trip (plus their CAS
        traffic) for the same effect.  Used by the k-mer counting kernel.
        """
        new, stats = part.structure.upsert(key, delta)
        entry_bytes = self._entry_bytes(key, new)
        if stats.resized:
            self._grow_segment_if_resized(part, stats, entry_bytes)
        return new, stats, entry_bytes

    def upsert(self, rank: int, key: Hashable, delta: Any = 1):
        """Generator: atomic increment-or-insert; returns the new value."""
        part = self.partition_for(key)
        result = yield from self._execute(
            rank, part, "upsert", (key, delta),
            payload_bytes=self._entry_bytes(key, delta),
        )
        return result

    def upsert_async(self, rank: int, key: Hashable, delta: Any = 1):
        part = self.partition_for(key)
        return self._execute_async(
            rank, part, "upsert", (key, delta), self._entry_bytes(key, delta)
        )

    def upsert_buffered(self, rank: int, key: Hashable, delta: Any = 1):
        """Generator: upsert through the aggregation buffer.

        With ``aggregation=0`` this is exactly :meth:`upsert`; otherwise a
        remote-bound upsert is write-combined and applied at the next
        threshold or sync-point flush (returning None immediately).  The
        k-mer/contig build storms' hot path.
        """
        part = self.partition_for(key)
        result = yield from self._buffer_op(
            rank, part, "upsert", (key, delta),
            payload_bytes=self._entry_bytes(key, delta),
        )
        return result

    def erase_buffered(self, rank: int, key: Hashable):
        """Generator: erase through the aggregation buffer."""
        part = self.partition_for(key)
        result = yield from self._buffer_op(
            rank, part, "erase", (key,),
            payload_bytes=self._entry_bytes(key),
        )
        return result

    # -- pipelined async API (per-op futures over the write combiner) --------
    def async_rmw(self, rank: int, key: Hashable, delta: Any = 1) -> RPCFuture:
        """Pipelined atomic increment-or-insert; future of the new value.

        The combination the k-mer storm wants: the op write-combines like
        :meth:`upsert_buffered`, yet the caller still gets *this op's*
        result through a chainable future — pipelining without giving up
        per-op completions.  Remote issues ride the AIMD congestion window
        when the runtime has one armed.
        """
        part = self.partition_for(key)
        return self._pipeline_op(
            rank, part, "upsert", (key, delta),
            self._entry_bytes(key, delta),
        )

    def async_find(self, rank: int, key: Hashable) -> RPCFuture:
        """Pipelined cached read; future of the raw find result."""
        return self._cached_find_async(rank, key)

    # -- locality-aware cached reads ---------------------------------------
    def _cached_find(self, rank: int, key: Hashable):
        """Generator: ``_do_find`` result via the read cache when possible.

        Only remote partitions cache (same-node reads are already direct
        shared-memory accesses).  Any pending buffered ops for the target
        partition flush first, then the pre-read epoch is captured so a
        racing write voids the fill.  Returns the raw find result.
        """
        part = self.partition_for(key)
        caller_node = self.runtime.cluster.node_of_rank(rank)
        if self._cache is None or caller_node == part.node_id:
            result = yield from self._execute(
                rank, part, "find", (key,),
                payload_bytes=self._entry_bytes(key),
            )
            return result
        if self._coalescer is not None:
            yield from self._coalescer.drain(rank, part.index)
        hit = self._cache.lookup(caller_node, part, key)
        if hit is not MISS:
            return hit
        epoch_before = part.write_epoch
        result = yield from self._execute(
            rank, part, "find", (key,), payload_bytes=self._entry_bytes(key)
        )
        self._cache.fill(caller_node, part, key, result, epoch_before)
        return result

    def _cached_find_async(self, rank: int, key: Hashable) -> RPCFuture:
        """Async variant of :meth:`_cached_find`; hits complete instantly."""
        part = self.partition_for(key)
        caller_node = self.runtime.cluster.node_of_rank(rank)
        if self._cache is None or caller_node == part.node_id:
            return self._execute_async(
                rank, part, "find", (key,), self._entry_bytes(key)
            )
        if (self._coalescer is None
                or not (self._coalescer.pending_for(caller_node, part.index)
                        or self._coalescer.inflight_for(caller_node,
                                                        part.index))):
            hit = self._cache.lookup(caller_node, part, key)
            if hit is not MISS:
                fut = RPCFuture(self.runtime.sim, f"{self.name}.find")
                # Materialize the event first: the settle then occupies a
                # scheduler slot at the hit instant, keeping same-timestamp
                # ordering identical to the eager-event design.
                fut.wait()
                fut._complete(hit)
                return fut
        epoch_before = part.write_epoch
        fut = self._execute_async(
            rank, part, "find", (key,), self._entry_bytes(key)
        )

        def _fill(event):
            if event.ok:
                self._cache.fill(
                    caller_node, part, key, event.value, epoch_before
                )

        fut._event.add_callback(_fill)
        return fut

    def __init__(self, runtime, name, partitions, hash_fn=None, **kwargs):
        self._hash_fn: Callable[[Any], int] = hash_fn or stable_hash
        #: key -> winning Partition, memoizing the HRW sweep (pure host-side
        #: work, so caching cannot perturb simulated time); cleared whenever
        #: partition membership changes.
        self._route_cache: dict = {}
        self._route_len: int = -1
        self._route_tail_uid: int = -1
        super().__init__(runtime, name, partitions, **kwargs)
        if self.replication:
            self._bind_replica_handlers()

    # -- level-1 hash: key -> partition ------------------------------------
    # Rendezvous (highest-random-weight) hashing: each key scores every
    # partition by mixing the key hash with the partition's stable uid and
    # picks the maximum.  Uniform at any member count AND minimally
    # disruptive on membership change: adding/removing a partition only
    # remaps the keys whose winner changed (~1/(n+1) of them) — the
    # property behind HCL's cheap, localized re-balancing (vs BCL's
    # limitation (e)).
    @staticmethod
    def _hrw_score(h: int, uid: int) -> int:
        x = (h ^ (uid * 0xC2B2AE3D27D4EB4F)) & _MASK64
        x = (x * _GOLDEN64) & _MASK64
        x ^= x >> 29
        x = (x * 0xBF58476D1CE4E5B9) & _MASK64
        return x ^ (x >> 32)

    def partition_for(self, key: Hashable) -> Partition:
        # Guard against membership edits that bypass add/remove_partition
        # (tests poke ``partitions`` directly): any length or tail-uid
        # change voids every memoized winner.
        parts = self.partitions
        if (len(parts) != self._route_len
                or parts[-1].uid != self._route_tail_uid):
            self._route_len = len(parts)
            self._route_tail_uid = parts[-1].uid
            self._route_cache.clear()
        part = self._route_cache.get(key)
        if part is not None:
            return part
        h = self._hash_fn(key) & _MASK64
        best = None
        best_score = -1
        for part in self.partitions:
            score = self._hrw_score(h, part.uid)
            if score > best_score:
                best = part
                best_score = score
        self._route_cache[key] = best
        return best

    # -- explicit resize (Table I row 3) -----------------------------------
    def _do_resize(self, part: Partition, new_buckets: int):
        table: CuckooHash = part.structure
        if new_buckets <= table.bucket_count:
            return False, None, 0
        from repro.structures.stats import OpStats

        stats = OpStats(resized=True, resize_entries=len(table))
        while table.bucket_count < new_buckets:
            table._resize(stats)
        self._grow_segment_if_resized(part, stats, 128)
        return True, stats, 128

    def resize(self, rank: int, partition_id: int, new_buckets: int):
        """Generator: explicit per-partition resize (localized, no global
        synchronization — Section III-D)."""
        part = self.partitions[partition_id]
        result = yield from self._execute(
            rank, part, "resize", (new_buckets,), payload_bytes=16
        )
        return result

    # -- dynamic partition membership (Section III-D: "heterogeneous
    # partitions within PGAS ... dynamic addition/removal of partitions") --
    def add_partition(self, rank: int, node_id: int,
                      initial_buckets: Optional[int] = None):
        """Generator: grow the container by one partition on ``node_id``.

        Entries whose first-level hash now lands on the new partition are
        migrated there (the re-balancing cost BCL's static agreement makes
        expensive — here it is localized to moved keys, no all-to-all
        synchronization).  Returns the number of migrated entries.
        """
        from repro.core.container import Partition
        from repro.memory.segment import MemorySegment
        from repro.structures.cuckoo import CuckooHash

        node = self.runtime.cluster.node(node_id)
        index = len(self.partitions)
        uid = max(p.uid for p in self.partitions) + 1
        seg = MemorySegment(node, 64 * 1024, name=f"{self.name}.u{uid}")
        self.runtime.gas.register(seg)
        structure = CuckooHash(
            initial_buckets or CuckooHash.DEFAULT_BUCKETS,
            hash_fn=self._hash_fn,
        )
        part = Partition(index, node_id, structure, seg, uid=uid)
        # Bind handlers for the (possibly new) hosting node before routing.
        server = self.runtime.server(node_id)
        for op in self.OPERATIONS:
            name = f"{self.name}.{op}"
            if name not in server.registry:
                server.bind(name, self._make_handler(op))
        if self._coalescer is not None:
            # Buffered ops routed under the old membership must land first.
            yield from self._coalescer.drain(rank)
        self.partitions.append(part)
        self._route_cache.clear()  # HRW winners changed for ~1/(n+1) keys
        if self._cache is not None:
            self._cache.clear()  # partition indices / routing changed
        moved = yield from self._migrate_misplaced(rank)
        return moved

    def remove_partition(self, rank: int, partition_id: int):
        """Generator: drain and remove one partition; entries re-hash to the
        surviving partitions.  Returns the number of migrated entries."""
        if len(self.partitions) < 2:
            raise ValueError("cannot remove the last partition")
        if not 0 <= partition_id < len(self.partitions):
            raise IndexError(f"no partition {partition_id}")
        if self._coalescer is not None:
            yield from self._coalescer.drain(rank)
        if self._cache is not None:
            self._cache.clear()  # partition indices / routing changed
        victim = self.partitions.pop(partition_id)
        self._route_cache.clear()  # surviving winners must be re-scored
        for i, part in enumerate(self.partitions):
            part.index = i
        evicted = list(victim.structure.items())
        moved = 0
        for key, value in evicted:
            target = self.partition_for(key)
            args = (key, value) if self._stores_values() else (key,)
            yield from self._execute(
                rank, target, "insert", args,
                payload_bytes=self._entry_bytes(*args),
            )
            moved += 1
        victim.segment.close()
        self.runtime.gas.deregister(victim.segment)
        return moved

    def _stores_values(self) -> bool:
        return isinstance(self, HCLUnorderedMap)

    def _migrate_misplaced(self, rank: int):
        """Move entries whose partition changed after a membership change.

        Rendezvous hashing keeps the moved set minimal (~1/(n+1) of the
        keys); the moves ship through the batched multi-op API — one
        invocation per destination partition — so migration cost is a few
        bulk transfers, not per-key round trips.
        """
        ops = []
        for part in list(self.partitions):
            for key, value in list(part.structure.items()):
                target = self.partition_for(key)
                if target is part:
                    continue
                part.structure.remove(key)
                part.write_epoch += 1
                if self._stores_values():
                    ops.append(("insert", key, value))
                else:
                    ops.append(("insert", key))
        if ops:
            yield from self.batch(rank, ops)
        return len(ops)

    # -- iteration (debug / test helper; not a paper API) --------------------
    def _all_items(self) -> Iterator[Tuple[Hashable, Any]]:
        for part in self.partitions:
            yield from part.structure.items()


class HCLUnorderedMap(_HashContainerBase):
    """Distributed hash map: ``insert(k, v)``, ``find(k)``, ``erase(k)``."""

    #: mapped values are stored verbatim; keys (and upsert deltas, which
    #: the server adds) must stay real.
    SIM_ONLY_VALUE_ARGS = {"insert": 1}

    # -- server-side ops: (result, stats, entry_bytes) ------------------------
    def _do_insert(self, part: Partition, key, value):
        entry_bytes = self._entry_bytes(key, value)
        _new, stats = part.structure.insert(key, value)
        self._grow_segment_if_resized(part, stats, entry_bytes)
        return True, stats, entry_bytes

    def _do_find(self, part: Partition, key):
        value, found, stats = part.structure.find(key)
        entry_bytes = self._entry_bytes(key, value) if found else 16
        return (value if found else None, found), stats, entry_bytes

    def _do_erase(self, part: Partition, key):
        ok, stats = part.structure.remove(key)
        return ok, stats, 16

    # -- client API (generators; ``rank`` identifies the caller) ---------------
    def insert(self, rank: int, key: Hashable, value: Any):
        """bool insert(const K&, const V&) — Table I: F + L + W."""
        part = self.partition_for(key)
        payload = self._entry_bytes(key, value)
        result = yield from self._execute(
            rank, part, "insert", (key, value), payload_bytes=payload
        )
        return result

    def insert_async(self, rank: int, key: Hashable, value: Any) -> RPCFuture:
        part = self.partition_for(key)
        payload = self._entry_bytes(key, value)
        return self._execute_async(rank, part, "insert", (key, value), payload)

    def async_insert(self, rank: int, key: Hashable, value: Any) -> RPCFuture:
        """Pipelined insert: write-combined, with a per-op result future."""
        part = self.partition_for(key)
        return self._pipeline_op(
            rank, part, "insert", (key, value),
            self._entry_bytes(key, value),
        )

    def find(self, rank: int, key: Hashable):
        """bool find(const K&, V&) — Table I: F + L + R.

        Returns ``(value, found)``.
        """
        result = yield from self._cached_find(rank, key)
        return tuple(result)

    def find_async(self, rank: int, key: Hashable) -> RPCFuture:
        return self._cached_find_async(rank, key)

    def insert_buffered(self, rank: int, key: Hashable, value: Any):
        """Generator: insert through the aggregation buffer (see
        :meth:`_HashContainerBase.upsert_buffered` for the contract)."""
        part = self.partition_for(key)
        result = yield from self._buffer_op(
            rank, part, "insert", (key, value),
            payload_bytes=self._entry_bytes(key, value),
        )
        return result

    def erase(self, rank: int, key: Hashable):
        part = self.partition_for(key)
        result = yield from self._execute(
            rank, part, "erase", (key,), payload_bytes=self._entry_bytes(key)
        )
        return result


class HCLUnorderedSet(_HashContainerBase):
    """Distributed hash set: key-only buckets."""

    def _do_insert(self, part: Partition, key):
        entry_bytes = self._entry_bytes(key)
        _new, stats = part.structure.insert(key, True)
        self._grow_segment_if_resized(part, stats, entry_bytes)
        return True, stats, entry_bytes

    def _do_find(self, part: Partition, key):
        found, stats = part.structure.contains(key)
        return found, stats, self._entry_bytes(key)

    def _do_erase(self, part: Partition, key):
        ok, stats = part.structure.remove(key)
        return ok, stats, 16

    def insert(self, rank: int, key: Hashable):
        """bool insert(const K&) — Table I: F + L + W."""
        part = self.partition_for(key)
        result = yield from self._execute(
            rank, part, "insert", (key,), payload_bytes=self._entry_bytes(key)
        )
        return result

    def insert_async(self, rank: int, key: Hashable) -> RPCFuture:
        part = self.partition_for(key)
        return self._execute_async(
            rank, part, "insert", (key,), self._entry_bytes(key)
        )

    def async_insert(self, rank: int, key: Hashable) -> RPCFuture:
        """Pipelined insert: write-combined, with a per-op result future."""
        part = self.partition_for(key)
        return self._pipeline_op(
            rank, part, "insert", (key,), self._entry_bytes(key)
        )

    def find(self, rank: int, key: Hashable):
        """bool find(const K&) — membership test."""
        result = yield from self._cached_find(rank, key)
        return result

    def find_async(self, rank: int, key: Hashable) -> RPCFuture:
        return self._cached_find_async(rank, key)

    def insert_buffered(self, rank: int, key: Hashable):
        """Generator: insert through the aggregation buffer."""
        part = self.partition_for(key)
        result = yield from self._buffer_op(
            rank, part, "insert", (key,),
            payload_bytes=self._entry_bytes(key),
        )
        return result

    def erase(self, rank: int, key: Hashable):
        part = self.partition_for(key)
        result = yield from self._execute(
            rank, part, "erase", (key,), payload_bytes=self._entry_bytes(key)
        )
        return result
