"""HCL::queue — the single-partition distributed FIFO (Section III-D3-A).

"HCL queues are implemented as a single-partitioned structure, but are
globally visible.  The queues are identified by the process ID that hosts
the partition."  Push/pop (scalar and vector forms, per Table I) route every
caller to the hosting node; co-located callers take the shared-memory
bypass, remote callers one RoR invocation.

Dynamic growth: when the queue's estimated footprint exceeds its segment, a
resize of the hosting partition runs with copy/delete migration semantics —
**new pushes stall, pops keep being served** (the paper's migration rule),
modeled by a migration lock that only push handlers take.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

from repro.core.container import DistributedContainer, Partition
from repro.rpc.future import RPCFuture
from repro.structures.lfqueue import OptimisticQueue, QueueEmpty
from repro.structures.stats import OpStats

__all__ = ["HCLQueue"]


class HCLQueue(DistributedContainer):
    """Distributed lock-free FIFO queue."""

    OPERATIONS = ("push", "pop", "push_many", "pop_many", "size")

    #: FIFO values are stored verbatim and never interpreted server-side.
    SIM_ONLY_VALUE_ARGS = {"push": 0}

    def __init__(self, runtime, name, partitions, **kwargs):
        super().__init__(runtime, name, partitions, **kwargs)
        if len(self.partitions) != 1:
            raise ValueError("HCL::queue is single-partitioned")
        self._migrating = False

    @property
    def home(self) -> Partition:
        return self.partitions[0]

    # -- server-side ops -----------------------------------------------------
    def _maybe_grow(self, part: Partition, entry_bytes: int) -> Optional[OpStats]:
        """Grow the segment when the queue footprint approaches it."""
        q: OptimisticQueue = part.structure
        need = 2 * len(q) * max(64, entry_bytes)
        if need > part.segment.size:
            self._migrating = True
            try:
                part.segment.grow(max(need, 2 * part.segment.size))
            finally:
                self._migrating = False
            return OpStats(resized=True, resize_entries=len(q))
        return None

    def _do_push(self, part: Partition, value):
        entry_bytes = self._entry_bytes(value)
        stats = part.structure.push(value)
        grow = self._maybe_grow(part, entry_bytes)
        if grow is not None:
            stats = stats.merge(grow)
        return True, stats, entry_bytes

    def _do_pop(self, part: Partition):
        try:
            value, stats = part.structure.pop()
        except QueueEmpty:
            return (None, False), OpStats(local_ops=1), 16
        return (value, True), stats, self._entry_bytes(value)

    def _do_push_many(self, part: Partition, values):
        entry_bytes = self._entry_bytes(*values) if values else 16
        stats = part.structure.push_many(values)
        grow = self._maybe_grow(part, entry_bytes)
        if grow is not None:
            stats = stats.merge(grow)
        return True, stats, max(64, entry_bytes // max(1, len(values)))

    def _do_pop_many(self, part: Partition, count):
        values, stats = part.structure.pop_many(count)
        per = self._entry_bytes(*values) // len(values) if values else 16
        return values, stats, max(16, per)

    def _do_size(self, part: Partition):
        return len(part.structure), OpStats(local_ops=1), 8

    # -- client API ------------------------------------------------------------
    def push(self, rank: int, value: Any):
        """bool push(const T&) — Table I: F + L + W."""
        result = yield from self._execute(
            rank, self.home, "push", (value,),
            payload_bytes=self._entry_bytes(value),
        )
        return result

    def push_async(self, rank: int, value: Any) -> RPCFuture:
        return self._execute_async(
            rank, self.home, "push", (value,), self._entry_bytes(value)
        )

    def pop(self, rank: int):
        """bool pop(T&) — Table I: F + L + R.  Returns ``(value, ok)``."""
        result = yield from self._execute(
            rank, self.home, "pop", (), payload_bytes=16
        )
        return tuple(result)

    def pop_async(self, rank: int) -> RPCFuture:
        return self._execute_async(rank, self.home, "pop", (), 16)

    def push_many(self, rank: int, values: Sequence[Any]):
        """Vector push — Table I: F + L + E·W (one invocation for E items)."""
        values = list(values)
        result = yield from self._execute(
            rank, self.home, "push_many", (values,),
            payload_bytes=self._entry_bytes(*values) if values else 16,
        )
        return result

    def pop_many(self, rank: int, count: int):
        """Vector pop — Table I: F + L + E·R.  Returns a list (possibly short)."""
        result = yield from self._execute(
            rank, self.home, "pop_many", (count,), payload_bytes=16
        )
        return list(result)

    def size(self, rank: int):
        result = yield from self._execute(
            rank, self.home, "size", (), payload_bytes=8
        )
        return result
