"""Collective operations over HCL containers (Section III-C4).

"Asynchronicity increases overlaps with other computations and the use of
concurrent communication lanes within the hardware, thereby enabling
efficient collectives (e.g., broadcast, all gather/scatter)."

These collectives are built *on top of the public container API* — they
move data through a distributed hash map and synchronize with a barrier,
so every byte crosses the simulated fabric and the incast/fan-out costs
are real.  ``reduce`` showcases the procedural paradigm: per-rank
contributions combine **at the server** through ``upsert``, one invocation
per rank, with no client-side read-modify-write round trips.

Each collective call is generation-stamped, so a :class:`Collectives`
instance is reusable across rounds, like an MPI communicator.
"""

from __future__ import annotations

from typing import Any, List, Optional

from repro.simnet.sync import Barrier

__all__ = ["Collectives"]


class Collectives:
    """MPI-flavoured collectives for HCL rank processes."""

    def __init__(self, runtime, name: str = "coll",
                 ranks: Optional[range] = None, partitions: Optional[int] = None):
        self.runtime = runtime
        self.name = name
        self.ranks = ranks if ranks is not None else range(
            runtime.cluster.total_procs
        )
        self.size = len(self.ranks)
        self._store = runtime.unordered_map(
            f"__{name}__", partitions=partitions, initial_buckets=4096,
        )
        self._barrier = Barrier(runtime.sim, parties=self.size,
                                name=f"{name}/barrier")
        self._generation = 0

    def _gen(self) -> int:
        # All parties call collectives in the same order (the usual MPI
        # contract), so a per-instance counter bumped at the barrier is a
        # consistent generation stamp.
        return self._barrier.generation

    # -- barrier --------------------------------------------------------------
    def barrier(self, rank: int):
        """Generator: wait until every rank has arrived.

        A barrier is a mandatory aggregation sync point: any buffered
        container ops from this rank's node flush (and complete) before the
        rank arrives, so post-barrier reads observe pre-barrier writes.
        """
        yield from self.runtime.flush_containers(rank)
        gen = yield self._barrier.wait()
        return gen

    # -- broadcast -------------------------------------------------------------
    def broadcast(self, rank: int, value: Any = None, root: int = 0):
        """Generator: root's ``value`` is returned at every rank.

        One insert by the root, then one find per rank (the fan-in reads
        of a hot key — incast on the owning partition — are charged).
        """
        gen = self._gen()
        if rank == root:
            yield from self._store.insert(rank, ("bcast", gen), value)
        yield self._barrier.wait()
        out, found = yield from self._store.find(rank, ("bcast", gen))
        assert found, "broadcast value missing (root did not arrive?)"
        return out

    # -- gather / all-gather -----------------------------------------------------
    def gather(self, rank: int, value: Any, root: int = 0):
        """Generator: root receives ``[value_0, ..., value_{n-1}]``; other
        ranks receive None."""
        gen = self._gen()
        yield from self._store.insert(rank, ("gather", gen, rank), value)
        yield self._barrier.wait()
        if rank != root:
            return None
        out = []
        futures = [
            self._store.find_async(rank, ("gather", gen, r))
            for r in self.ranks
        ]
        for fut in futures:
            yield fut.wait()
            value, found = fut.result
            assert found
            out.append(value)
        return out

    def all_gather(self, rank: int, value: Any):
        """Generator: every rank receives everyone's values, in rank order.

        n inserts followed by n^2 overlapped finds — the quadratic read
        fan-out is the honest cost of an unoptimized all-gather.
        """
        gen = self._gen()
        yield from self._store.insert(rank, ("allg", gen, rank), value)
        yield self._barrier.wait()
        futures = [
            self._store.find_async(rank, ("allg", gen, r)) for r in self.ranks
        ]
        out = []
        for fut in futures:
            yield fut.wait()
            v, found = fut.result
            assert found
            out.append(v)
        return out

    # -- scatter ---------------------------------------------------------------------
    def scatter(self, rank: int, values: Optional[List[Any]] = None,
                root: int = 0):
        """Generator: root provides one value per rank; each rank gets its own."""
        gen = self._gen()
        if rank == root:
            if values is None or len(values) != self.size:
                raise ValueError(
                    f"scatter root needs exactly {self.size} values"
                )
            futures = [
                self._store.insert_async(rank, ("scat", gen, r), v)
                for r, v in zip(self.ranks, values)
            ]
            for fut in futures:
                yield fut.wait()
        yield self._barrier.wait()
        out, found = yield from self._store.find(rank, ("scat", gen, rank))
        assert found
        return out

    # -- reduce ------------------------------------------------------------------------
    def reduce(self, rank: int, value: Any, root: int = 0):
        """Generator: sum-reduce via server-side ``upsert`` — the procedural
        paradigm's one-invocation-per-contribution reduction.

        ``value`` must support ``+`` with itself and with the integer 0
        (ints, floats, and mergeable types like the contig ExtensionPair).
        Root receives the total; others receive None.
        """
        gen = self._gen()
        yield from self._store.upsert(rank, ("red", gen), value)
        yield self._barrier.wait()
        if rank != root:
            return None
        total, found = yield from self._store.find(rank, ("red", gen))
        assert found
        return total

    def all_reduce(self, rank: int, value: Any):
        """Generator: reduce + broadcast in one round trip per rank pair."""
        gen = self._gen()
        yield from self._store.upsert(rank, ("ared", gen), value)
        yield self._barrier.wait()
        total, found = yield from self._store.find(rank, ("ared", gen))
        assert found
        return total
