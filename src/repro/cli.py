"""Command-line interface: run reproduction experiments without pytest.

::

    python -m repro.cli list                 # what can I run?
    python -m repro.cli fig1                 # the motivating test case
    python -m repro.cli fig5 --sizes 4096 1048576
    python -m repro.cli fig7 --apps isx kmer --nodes 2 4
    python -m repro.cli sweep --nodes 2 4 8 --ops 64 --size 65536

Each command builds the same scaled experiment as the corresponding bench
in ``benchmarks/`` and prints the paper-style table.  The pytest benches
remain the canonical, asserted versions; the CLI is for interactive
exploration (changing sizes, node counts, providers) without editing code.
"""

from __future__ import annotations

import argparse
import sys
from typing import List

from repro.config import KB, MB, ares_like
from repro.harness import render_series, render_table


def _cmd_fig1(args) -> int:
    from benchmarks.test_fig1_motivation import _run_rpc, run_bcl, SCALE

    t_bcl, stages = run_bcl()
    t_cas = _run_rpc(lock_free=False)
    t_lf = _run_rpc(lock_free=True)
    print(render_table(
        "Fig 1 — motivating test",
        ["approach", "sim (s)", "extrapolated (s)", "speedup"],
        [["BCL", t_bcl, t_bcl * SCALE, 1.0],
         ["RPC with CAS", t_cas, t_cas * SCALE, t_bcl / t_cas],
         ["RPC lock-free", t_lf, t_lf * SCALE, t_bcl / t_lf]],
    ))
    return 0


def _cmd_fig5(args) -> int:
    from benchmarks import test_fig5_hybrid as f5

    sizes = args.sizes or f5.SIZES
    saved = f5.SIZES
    f5.SIZES = sizes
    try:
        for local, label in ((True, "intra-node"), (False, "inter-node")):
            sweep = f5._sweep(local=local)
            labels = [f"{s // KB}KB" if s < MB else f"{s // MB}MB"
                      for s in sizes]
            print(render_series(f"Fig 5 {label} bandwidth MB/s", "op size",
                                labels, sweep))
            print()
    finally:
        f5.SIZES = saved
    return 0


def _cmd_fig6(args) -> int:
    from benchmarks import conftest as bench_conf
    from benchmarks import test_fig6_scaling as f6

    bench_conf.set_scale(args.scale)
    series = {"hcl_umap_ins": [], "hcl_map_ins": [], "bcl_umap_ins": []}
    parts = args.partitions or f6.PART_SWEEP
    for p in parts:
        ui, _uf = f6._hcl_map_run(p, ordered=False)
        oi, _of = f6._hcl_map_run(p, ordered=True)
        bi, _bf = f6._bcl_map_run(p)
        series["hcl_umap_ins"].append(ui)
        series["hcl_map_ins"].append(oi)
        series["bcl_umap_ins"].append(bi)
    print(render_series("Fig 6a — insert throughput op/s", "partitions",
                        parts, series))
    if args.emit:
        import json

        with open(args.emit, "w", encoding="utf-8") as fh:
            json.dump({"partitions": list(parts), "series": series},
                      fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.emit}")
    return 0


def _suffixed(path: str, suffix: str) -> str:
    """``foo.json`` + ``bar`` -> ``foo_bar.json`` (append when no dot)."""
    if not suffix:
        return path
    if "." in path:
        stem, ext = path.rsplit(".", 1)
        return f"{stem}_{suffix}.{ext}"
    return f"{path}_{suffix}"


class _ProfileRun:
    """CLI glue for ``--profile``: wrap the bench run, then emit reports.

    Inactive unless one of the profile flags was passed, in which case
    the wrapped block runs under :class:`repro.obs.WallProfiler`
    (cProfile underneath — the simulation code itself is untouched, so
    simulated results are identical either way).
    """

    def __init__(self, args, command: str):
        self.command = command
        self.top = getattr(args, "profile_top", 25)
        self.out = getattr(args, "profile_out", None)
        self.folded = getattr(args, "profile_folded", None)
        self.active = bool(getattr(args, "profile", False) or self.out
                           or self.folded)
        self._profiler = None
        self._ctx = None

    def __enter__(self):
        if self.active:
            from repro.obs import WallProfiler

            self._profiler = WallProfiler()
            self._ctx = self._profiler.profile()
            self._ctx.__enter__()
        return self

    def __exit__(self, *exc) -> None:
        if self._ctx is not None:
            self._ctx.__exit__(*exc)

    def scope(self, name: str):
        """Named wall phase inside the profiled block (no-op when off)."""
        if self._profiler is None:
            import contextlib

            return contextlib.nullcontext()
        return self._profiler.scope(name)

    def emit(self) -> None:
        """Print the profile table and write any requested outputs."""
        if not self.active:
            return
        from repro.obs import render_profile, write_folded, write_profile_json

        payload = self._profiler.report(top_n=self.top, command=self.command)
        print(render_profile(payload, top_n=min(self.top, 15)))
        if self.out:
            print(f"wrote {write_profile_json(payload, self.out)}")
        if self.folded:
            n = write_folded(payload, self.folded)
            print(f"wrote {self.folded} ({n} folded stacks)")


def _add_profile_args(parser, default_out: str) -> None:
    """The shared ``--profile`` flag family on every bench command."""
    parser.add_argument("--profile", action="store_true",
                        help="profile the bench run's wall time (cProfile; "
                             "simulated results are unchanged) and print "
                             "per-subsystem shares + top functions")
    parser.add_argument("--profile-out", nargs="?", const=default_out,
                        default=None, metavar="PATH",
                        help="write the wall-profile JSON (implies "
                             f"--profile; default {default_out})")
    parser.add_argument("--profile-folded", nargs="?",
                        const=default_out.replace(".json", ".folded"),
                        default=None, metavar="PATH",
                        help="write folded stacks for flame-graph tools "
                             "(implies --profile)")
    parser.add_argument("--profile-top", type=int, default=25,
                        help="functions kept in the profile report "
                             "(default 25)")


def _export_trace(tracer, prefix: str, pid_base: int = 0) -> None:
    """Write one tracer's spans as JSON-lines + Chrome trace."""
    from repro.obs import write_chrome_trace, write_span_jsonl

    span_path = f"{prefix}.jsonl"
    chrome_path = f"{prefix}_chrome.json"
    n = write_span_jsonl(tracer.spans, span_path)
    write_chrome_trace(tracer.spans, chrome_path, pid_base=pid_base)
    print(f"wrote {span_path} ({n} spans) and {chrome_path}")


def _cmd_chaos_soak(args) -> int:
    from repro.harness.chaos import emit_report, render_report, run_chaos_soak

    worst = 0
    for plan in args.plans:
        box = {}
        instrument = None
        if args.trace or args.metrics_out or args.flight_recorder:
            def instrument(h, box=box):
                box["sim"] = h.sim
                if args.trace:
                    from repro.obs import install_tracer

                    install_tracer(h.sim)
                if args.flight_recorder:
                    from repro.obs import FlightRecorder

                    recorder = FlightRecorder(
                        h.sim, interval=args.flight_interval,
                        maxlen=args.flight_maxlen,
                        select=["faults/", "rpc/", "/ops", "rpcc*"],
                    )
                    recorder.install(h.cluster)
                    box["recorder"] = recorder
        report = run_chaos_soak(
            plan=plan,
            seed=args.seed,
            nodes=args.nodes,
            procs_per_node=args.procs,
            keys_per_rank=args.keys,
            kmers_per_rank=args.kmers,
            horizon=args.horizon,
            aggregation=args.aggregation,
            instrument=instrument,
            windows=args.windows,
        )
        print(render_report(report))
        suffix = plan if len(args.plans) > 1 else ""
        if args.emit:
            path = _suffixed(args.emit, suffix)
            emit_report(report, path)
            print(f"wrote {path}")
        if args.trace and "sim" in box:
            from repro.obs import tracer_of

            _export_trace(tracer_of(box["sim"]),
                          _suffixed(args.trace, suffix))
        if args.metrics_out and "sim" in box:
            from repro.obs import registry_of, write_metrics_json

            path = _suffixed(args.metrics_out, suffix)
            n = write_metrics_json(registry_of(box["sim"]), path)
            print(f"wrote {path} ({n} metrics)")
        if args.flight_recorder and "recorder" in box:
            recorder = box["recorder"]
            path = _suffixed(args.flight_recorder, suffix)
            _write_flight_json(recorder.payload(), path)
            print(f"wrote {path} ({recorder.samples} samples, "
                  f"{len(recorder.series)} series)")
        if not report["ok"]:
            worst = 1
    return worst


def _cmd_fig7(args) -> int:
    from repro.apps import (
        run_contig_generation, run_isx, run_kmer_counting, synthesize_genome,
    )

    def sc(n: int) -> int:
        return max(1, round(n * args.scale))

    apps = args.apps or ["isx", "kmer", "contig"]
    nodes_sweep = args.nodes or [2, 4, 8]
    hcl_only = args.hcl_only
    for app in apps:
        rows = []
        for nodes in nodes_sweep:
            spec = ares_like(nodes=nodes, procs_per_node=args.procs)
            b = None
            if app == "isx":
                h = run_isx("hcl", spec, keys_per_rank=sc(args.ops),
                            aggregation=args.aggregation,
                            batch_charge=args.batch_charge,
                            sim_only=args.container_sim_only)
                if not hcl_only:
                    b = run_isx("bcl", spec, keys_per_rank=sc(args.ops))
            else:
                data = synthesize_genome(
                    genome_length=sc(300 * nodes), num_reads=sc(24 * nodes),
                    read_length=60, k=15, seed=nodes,
                )
                if app == "kmer":
                    h = run_kmer_counting(
                        "hcl", spec, data, aggregation=args.aggregation,
                        batch_charge=args.batch_charge,
                        sim_only=args.container_sim_only,
                    )
                    if not hcl_only:
                        b = run_kmer_counting("bcl", spec, data)
                else:
                    # contig traverses stored values: no sim-only mode.
                    h = run_contig_generation(
                        "hcl", spec, data, aggregation=args.aggregation,
                        read_cache=bool(args.aggregation),
                        batch_charge=args.batch_charge,
                    )
                    if not hcl_only:
                        b = run_contig_generation("bcl", spec, data)
            assert h.verified, f"{app} (hcl) failed verification"
            if b is None:
                rows.append([nodes, "-", h.time_seconds, "-"])
            else:
                assert b.verified, f"{app} (bcl) failed verification"
                rows.append([nodes, b.time_seconds, h.time_seconds,
                             b.time_seconds / h.time_seconds])
        print(render_table(
            f"Fig 7 — {app} weak scaling",
            ["nodes", "bcl (s)", "hcl (s)", "speedup"], rows,
        ))
        print()
    return 0


def _cmd_sweep(args) -> int:
    """Free-form insert-throughput sweep over nodes/ops/size/provider."""
    from repro.core import HCL
    from repro.harness import Blob

    rows = []
    for nodes in args.nodes:
        spec = ares_like(nodes=nodes, procs_per_node=args.procs)
        hcl = HCL(spec, provider=args.provider)
        m = hcl.unordered_map("m", partitions=nodes,
                              initial_buckets=8 * args.procs * args.ops)

        def body(rank):
            for i in range(args.ops):
                yield from m.insert(rank, (rank, i), Blob(args.size))

        hcl.run_ranks(body)
        total = spec.total_procs * args.ops
        rows.append([nodes, spec.total_procs, hcl.now,
                     total / hcl.now,
                     total * args.size / hcl.now / MB])
    print(render_table(
        f"unordered_map insert sweep ({args.size} B ops, "
        f"provider={args.provider})",
        ["nodes", "clients", "sim time (s)", "op/s", "MB/s"], rows,
    ))
    return 0


def _cmd_microbench(args) -> int:
    from repro.harness.microbench import run_microbench

    report = run_microbench(
        ares_like(nodes=2, procs_per_node=4), provider=args.provider
    )
    print(render_table(
        f"Simulated fabric microbenchmarks (provider={args.provider}; "
        "paper calibration: OSU ~4.5 GB/s, STREAM ~65 GB/s)",
        ["metric", "value"], report.rows(),
    ))
    return 0


def _cmd_kernelbench(args) -> int:
    from repro.harness.kernelbench import (
        emit_bench_json, kernel_events_per_sec, traced_kernel_bench,
    )

    kwargs = dict(
        procs=args.procs,
        timeouts_per_proc=args.timeouts,
        pooling=not args.no_pooling,
        scheduler=args.scheduler,
    )
    prof = _ProfileRun(args, "kernelbench")
    with prof, prof.scope("kernelbench.run"):
        if args.trace or args.metrics_out:
            rep, tracer, registry = traced_kernel_bench(
                repeats=args.repeats, **kwargs
            )
        else:
            rep = kernel_events_per_sec(repeats=args.repeats, **kwargs)
    print(render_table(
        "DES kernel throughput (wall clock; best of "
        f"{args.repeats} runs)",
        ["metric", "value"], rep.rows(),
    ))
    # Emission is opt-in: the committed BENCH_kernel.json carries the
    # reference machine's wall numbers, and every casual run rewriting it
    # dirtied unrelated PRs.  Pass --emit to update it deliberately.
    if args.emit and not args.no_emit:
        print(f"wrote {emit_bench_json(rep, args.emit)}")
    prof.emit()
    if args.trace:
        _export_trace(tracer, args.trace)
    if args.metrics_out:
        from repro.obs import write_metrics_json

        n = write_metrics_json(registry, args.metrics_out)
        print(f"wrote {args.metrics_out} ({n} metrics)")
    return 0


def _cmd_aggbench(args) -> int:
    from repro.harness.aggbench import emit_agg_json, run_agg_bench

    collector = [] if (args.trace or args.metrics_out) else None
    prof = _ProfileRun(args, "aggbench")
    with prof, prof.scope("aggbench.run"):
        report = run_agg_bench(
            scale=args.scale,
            nodes=args.nodes,
            procs_per_node=args.procs,
            sweep=args.sweep,
            apps=args.apps,
            repeats=args.repeats,
            sim_only=args.sim_only,
            trace=bool(args.trace),
            collector=collector,
            batch_charge=args.batch_charge,
            container_sim_only=args.container_sim_only,
        )
    print(render_table(
        f"Aggregation sweep (scale={args.scale}, "
        f"{args.nodes}x{args.procs} ranks)",
        ["app", "buffer", "sim (s)", "wall (s)", "ops/s",
         "ops/flush", "hit rate"],
        report.table_rows(),
    ))
    for app, entry in sorted(report.speedups().items()):
        metric = "sim" if args.sim_only else "wall"
        print(f"  {app}: best {metric} speedup "
              f"{entry.get(f'{metric}_speedup', 0):.2f}x "
              f"(buffer={entry['aggregation']})")
    if args.emit:
        print(f"wrote {emit_agg_json(report, args.emit)}")
    prof.emit()
    if args.trace and collector:
        from repro.obs import tracer_of

        for i, (label, sim) in enumerate(collector):
            tracer = tracer_of(sim)
            if tracer is not None and len(tracer):
                # Disjoint pid ranges so one Perfetto session can hold
                # every (app, buffer-size) run side by side.
                _export_trace(tracer, f"{args.trace}_{label}",
                              pid_base=1000 * i)
    if args.metrics_out and collector:
        import json

        from repro.obs import (
            metrics_snapshot, publish_scheduler_metrics, registry_of,
        )

        combined = {}
        for label, sim in collector:
            publish_scheduler_metrics(sim)
            combined[label] = metrics_snapshot(registry_of(sim))
        with open(args.metrics_out, "w", encoding="utf-8") as fh:
            json.dump(combined, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.metrics_out} ({len(combined)} runs)")
    if args.check:
        failures = report.check(min_speedup=args.min_speedup)
        for failure in failures:
            print(f"CHECK FAILED: {failure}", file=sys.stderr)
        return 1 if failures else 0
    return 0


def _cmd_asyncbench(args) -> int:
    from repro.harness.asyncbench import emit_async_json, run_async_bench

    collector = [] if args.metrics_out else None
    flight_sink = [] if args.flight_recorder else None
    flight = None
    if args.flight_recorder:
        flight = {"interval": args.flight_interval,
                  "maxlen": args.flight_maxlen}
    prof = _ProfileRun(args, "asyncbench")
    with prof, prof.scope("asyncbench.run"):
        report = run_async_bench(
            scale=args.scale,
            nodes=args.nodes,
            procs_per_node=args.procs,
            repeats=args.repeats,
            sim_only=args.sim_only,
            collector=collector,
            flight=flight,
            flight_sink=flight_sink,
        )
    print(render_table(
        f"Async pipeline A/B (scale={args.scale}, "
        f"{args.nodes}x{args.procs} ranks)",
        ["mode", "buffer", "windows", "sim (s)", "wall (s)",
         "qw p99 (us)", "stalls", "auto_thr", "digest"],
        report.table_rows(),
    ))
    metric = "sim" if args.sim_only else "wall"
    summary = report.summary()
    speedup = summary.get(f"async_{metric}_speedup")
    if speedup is not None:
        print(f"  async-auto over sync baseline: {speedup:.2f}x {metric}")
    ratio = summary.get("auto_vs_best_static")
    if ratio is not None:
        print(f"  auto vs best static (buffer="
              f"{summary['best_static_aggregation']}): {ratio:.2f}x")
    if args.emit:
        print(f"wrote {emit_async_json(report, args.emit)}")
    prof.emit()
    if args.metrics_out and collector:
        import json

        from repro.obs import (
            metrics_snapshot, publish_scheduler_metrics, registry_of,
        )

        combined = {}
        for label, sim in collector:
            publish_scheduler_metrics(sim)
            combined[label] = metrics_snapshot(registry_of(sim))
        with open(args.metrics_out, "w", encoding="utf-8") as fh:
            json.dump(combined, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.metrics_out} ({len(combined)} runs)")
    if flight_sink:
        for label, payload in flight_sink:
            path = _suffixed(args.flight_recorder, label)
            _write_flight_json(payload, path)
            print(f"wrote {path} ({payload['samples']} samples, "
                  f"{len(payload['series'])} series)")
    if args.check:
        failures = report.check(min_speedup=args.min_speedup)
        for failure in failures:
            print(f"CHECK FAILED: {failure}", file=sys.stderr)
        return 1 if failures else 0
    return 0


def _cmd_trace(args) -> int:
    from repro.obs import validate_chrome_trace, validate_span_log

    if args.validate:
        worst = 0
        for path in args.validate:
            validator = (validate_span_log if path.endswith(".jsonl")
                         else validate_chrome_trace)
            errors = validator(path)
            if errors:
                worst = 1
                print(f"{path}: INVALID ({len(errors)} error(s))")
                for err in errors[:20]:
                    print(f"  {err}", file=sys.stderr)
            else:
                print(f"{path}: OK")
        return worst

    # Demo mode: one traced app run, stage breakdown + tiling check.
    from repro.harness.aggbench import _run_app
    from repro.obs import STAGE_NAMES, install_tracer, tracer_of

    box = {}

    def instrument(hcl):
        box["sim"] = hcl.sim
        install_tracer(hcl.sim)

    spec = ares_like(nodes=args.nodes, procs_per_node=args.procs)
    ops, sim_s, verified, _agg = _run_app(
        args.app, spec, args.scale, args.aggregation, instrument
    )
    tracer = tracer_of(box["sim"])
    rows = [[name, int(row["n"]), f"{row['total'] * 1e6:.1f}",
             f"{row['mean'] * 1e9:.0f}"]
            for name, row in sorted(tracer.stage_breakdown().items())]
    print(render_table(
        f"traced {args.app} (scale={args.scale}, "
        f"{args.nodes}x{args.procs} ranks, agg={args.aggregation})",
        ["span", "n", "total (us)", "mean (ns)"], rows,
    ))
    rpcs = [s for s in tracer.spans
            if s.name.startswith("rpc.") and s.name not in STAGE_NAMES]
    worst = max((abs(sum(c.duration for c in tracer.stage_children(r))
                     - r.duration) for r in rpcs), default=0.0)
    print(f"  {len(tracer)} spans over {len(rpcs)} rpcs; "
          f"sim time {sim_s:.6f}s, {ops} app ops, verified={verified}")
    print(f"  stage tiling: max |sum(stages) - e2e| = {worst:.3g}s")
    if args.emit:
        _export_trace(tracer, args.emit)
    return 0 if (verified and worst < 1e-9) else 1


def _cmd_telemetry(args) -> int:
    from repro.harness.telemetry import (
        TELEMETRY_APPS, check_telemetry, emit_telemetry_json, run_telemetry,
    )

    report = run_telemetry(
        scale=args.scale,
        nodes=args.nodes,
        procs_per_node=args.procs,
        samples=args.samples,
        aggregation=args.aggregation,
        apps=args.apps or TELEMETRY_APPS,
    )
    for run in report["runs"]:
        rows = [[name,
                 len(ts["values"]),
                 f"{ts['mean']:.4g}",
                 f"{ts['max']:.4g}"]
                for name, ts in sorted(run["series"].items())]
        print(render_table(
            f"Fig 4 telemetry — {run['app']} "
            f"({run['ops']} ops in {run['sim_seconds']:.6f}s sim)",
            ["series", "samples", "mean", "max"], rows,
        ))
        print()
    if args.emit:
        print(f"wrote {emit_telemetry_json(report, args.emit)}")
    if args.check:
        failures = check_telemetry(report)
        for failure in failures:
            print(f"CHECK FAILED: {failure}", file=sys.stderr)
        return 1 if failures else 0
    return 0


def _write_flight_json(payload, path: str) -> None:
    """Write one flight-recorder payload (sorted keys + newline)."""
    import json

    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")


def _cmd_serving(args) -> int:
    from repro.harness.serving import (
        check_serving, emit_serving_json, render_serving, run_serving,
    )

    monitors = None
    monitors_sink = None
    if args.flight_recorder:
        monitors = {"interval": args.flight_interval,
                    "maxlen": args.flight_maxlen}
        monitors_sink = []
    prof = _ProfileRun(args, "serving")
    with prof, prof.scope("serving.run"):
        report = run_serving(
            nodes=args.nodes,
            procs_per_node=args.procs,
            clients=args.clients,
            tenants=args.tenants,
            theta=args.theta,
            keys=args.keys,
            mix=tuple(args.mix),
            queue_frac=args.queue_frac,
            queue_home=args.queue_home,
            rate=args.rate,
            ops_per_client=args.ops_per_client,
            seed=args.seed,
            bounds=[None if b.lower() in ("off", "none") else int(b)
                    for b in args.bounds],
            shed_retries=args.shed_retries,
            retry_backoff=args.retry_backoff,
            rpc_batch_size=args.batch,
            monitors=monitors,
            monitors_sink=monitors_sink,
        )
    print(render_serving(report))
    prof.emit()
    if monitors_sink:
        for entry in monitors_sink:
            bound = entry["queue_bound"]
            label = "off" if bound is None else f"b{bound}"
            flight = entry["flight"]
            path = _suffixed(args.flight_recorder, label)
            _write_flight_json(flight, path)
            skew = flight["skew"]
            slo = flight["slo"]
            top = skew["top_keys"][0]["key"] if skew["top_keys"] else "-"
            print(f"wrote {path} ({flight['samples']} samples, "
                  f"{len(flight['series'])} series); skew imbalance "
                  f"{skew['imbalance']:.2f}, hot key {top}, "
                  f"{slo['alerts']} SLO alert(s)")
    cliff = report.get("cliff")
    if cliff:
        print(f"  overload cliff: p99 {cliff['p99_shedding_off'] * 1e6:.0f}us "
              f"unbounded vs {cliff['p99_shedding_on'] * 1e6:.0f}us shed "
              f"({cliff['p99_ratio']:.2f}x)")
    if args.emit:
        print(f"wrote {emit_serving_json(report, args.emit)}")
    if args.check or args.require_cliff:
        failures = check_serving(report, require_cliff=args.require_cliff,
                                 cliff_factor=args.cliff_factor)
        for failure in failures:
            print(f"CHECK FAILED: {failure}", file=sys.stderr)
        return 1 if failures else 0
    return 0


def _cmd_obs_report(args) -> int:
    import json

    from repro.obs import (
        critpath_analyze, load_spans, validate_dashboard, write_dashboard,
    )

    if args.validate:
        errors = validate_dashboard(args.validate)
        if errors:
            print(f"{args.validate}: INVALID ({len(errors)} error(s))")
            for err in errors[:20]:
                print(f"  {err}", file=sys.stderr)
            return 1
        print(f"{args.validate}: OK")
        return 0

    if not (args.flight or args.spans or args.metrics):
        print("obs-report: need at least one of --flight/--spans/--metrics "
              "(or --validate PATH)", file=sys.stderr)
        return 2

    flight = None
    if args.flight:
        with open(args.flight, encoding="utf-8") as fh:
            flight = json.load(fh)
    compare = None
    diff = None
    if args.compare:
        if flight is None:
            print("obs-report: --compare needs --flight (run A)",
                  file=sys.stderr)
            return 2
        from repro.obs import diff_runs

        with open(args.compare, encoding="utf-8") as fh:
            compare = json.load(fh)
        diff = diff_runs(flight, compare, a_name=args.flight,
                         b_name=args.compare)
    critpath = None
    if args.spans:
        critpath = critpath_analyze(load_spans(args.spans),
                                    top_n=args.top_traces)
    metrics = None
    if args.metrics:
        with open(args.metrics, encoding="utf-8") as fh:
            metrics = json.load(fh)

    size = write_dashboard(args.out, flight=flight, critpath=critpath,
                           metrics=metrics, compare=compare, diff=diff,
                           title=args.title)
    errors = validate_dashboard(args.out)
    if errors:
        print(f"{args.out}: generated but INVALID "
              f"({len(errors)} error(s))", file=sys.stderr)
        for err in errors[:20]:
            print(f"  {err}", file=sys.stderr)
        return 1
    print(f"wrote {args.out} ({size} bytes, valid)")

    if critpath and critpath.get("traces"):
        overall = critpath["overall"]
        rows = [[s["stage"], f"{s['total'] * 1e6:.1f}",
                 f"{100 * s['share']:.1f}%"]
                for s in overall["stages"]]
        print(render_table(
            f"Critical path — {overall['n']} traces, "
            f"{overall['e2e_total'] * 1e6:.1f}us total e2e",
            ["stage", "total (us)", "share"], rows,
        ))
        slow = critpath.get("slow")
        if slow and slow.get("n"):
            dominant = max(slow["stages"], key=lambda s: s["total"])
            print(f"  p{100 * slow['quantile']:g} tail ({slow['n']} traces "
                  f">= {slow['threshold'] * 1e6:.1f}us): dominated by "
                  f"{dominant['stage']} "
                  f"({100 * dominant['share']:.1f}% of tail e2e)")
    if flight:
        skew = flight.get("skew")
        if skew:
            print(f"  skew: imbalance {skew['imbalance']:.2f}, "
                  f"cv {skew['cv']:.2f}, "
                  f"{skew['hot_events']} hot-partition event(s)")
        slo = flight.get("slo")
        if slo:
            print(f"  slo: {slo['alerts']} alert(s) "
                  f"over {slo['ticks']} ticks")
    return 0


def _cmd_obs_diff(args) -> int:
    from repro.obs import diff_paths, load_artifact, render_diff, \
        write_diff_json

    diff = diff_paths(args.a, args.b, rel_threshold=args.threshold,
                      top=args.top)
    print(render_diff(diff, max_rows=args.max_rows))
    if args.json:
        print(f"wrote {write_diff_json(diff, args.json)}")
    if args.md:
        with open(args.md, "w", encoding="utf-8") as fh:
            fh.write(render_diff(diff, max_rows=args.max_rows))
        print(f"wrote {args.md}")
    if args.html:
        from repro.obs import validate_dashboard, write_dashboard

        kind_a, doc_a = load_artifact(args.a)
        kind_b, doc_b = load_artifact(args.b)
        flight = doc_a if kind_a == "flight" else None
        compare = doc_b if (flight is not None and kind_b == "flight") \
            else None
        size = write_dashboard(
            args.html, flight=flight, compare=compare, diff=diff,
            title=f"A/B: {args.a} vs {args.b}",
        )
        errors = validate_dashboard(args.html)
        if errors:
            print(f"{args.html}: generated but INVALID "
                  f"({len(errors)} error(s))", file=sys.stderr)
            for err in errors[:20]:
                print(f"  {err}", file=sys.stderr)
            return 1
        print(f"wrote {args.html} ({size} bytes, valid)")
    if args.fail_on_significant and diff["significant"]:
        print("obs-diff: significant differences found "
              f"({diff['fingerprint']['label']})", file=sys.stderr)
        return 1
    return 0


def _cmd_list(args) -> int:
    print("commands: fig1 fig5 fig6 fig7 sweep microbench kernelbench "
          "aggbench asyncbench chaos-soak trace telemetry serving "
          "obs-report obs-diff list")
    print("full asserted reproduction: pytest benchmarks/ --benchmark-only -s")
    return 0


def _positive_float(text: str) -> float:
    value = float(text)
    if value <= 0:
        raise argparse.ArgumentTypeError(f"must be positive, got {text}")
    return value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.cli",
        description="HCL reproduction experiments (CLUSTER 2020)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list commands").set_defaults(fn=_cmd_list)
    sub.add_parser("fig1", help="motivating test").set_defaults(fn=_cmd_fig1)

    p5 = sub.add_parser("fig5", help="hybrid access bandwidth sweep")
    p5.add_argument("--sizes", nargs="+", type=int, default=None)
    p5.set_defaults(fn=_cmd_fig5)

    p6 = sub.add_parser("fig6", help="container scaling")
    p6.add_argument("--partitions", nargs="+", type=int, default=None)
    p6.add_argument("--scale", type=_positive_float, default=1.0,
                    help="work multiplier (ops per rank; default 1.0)")
    p6.add_argument("--emit", nargs="?", const="BENCH_fig6.json",
                    default=None, metavar="PATH",
                    help="write the series as JSON (default BENCH_fig6.json)")
    p6.set_defaults(fn=_cmd_fig6)

    from repro.fabric.faults import PLAN_NAMES

    pc = sub.add_parser(
        "chaos-soak",
        help="fault-injection soak: paper workloads under a chaos plan, "
             "asserting no acked write is lost",
    )
    pc.add_argument("--plans", nargs="+", choices=list(PLAN_NAMES),
                    default=["mixed"], help="fault plans to run")
    pc.add_argument("--seed", type=int, default=0)
    pc.add_argument("--nodes", type=int, default=3)
    pc.add_argument("--procs", type=int, default=2,
                    help="rank processes per node")
    pc.add_argument("--keys", type=int, default=24,
                    help="ISx-style inserts per rank")
    pc.add_argument("--kmers", type=int, default=16,
                    help="k-mer upserts per rank")
    pc.add_argument("--horizon", type=_positive_float, default=2e-3,
                    help="sim-time horizon the fault windows scale to (s)")
    pc.add_argument("--aggregation", type=int, default=0,
                    help="run upserts through N-op write-combining buffers "
                         "and the read cache, asserting never-stale reads")
    pc.add_argument("--emit", nargs="?", const="chaos_soak.json",
                    default=None, metavar="PATH",
                    help="write report JSON (per-plan suffix when multiple)")
    pc.add_argument("--trace", nargs="?", const="chaos_trace",
                    default=None, metavar="PREFIX",
                    help="trace every RPC; write PREFIX.jsonl + "
                         "PREFIX_chrome.json (per-plan suffix when multiple)")
    pc.add_argument("--metrics-out", nargs="?", const="chaos_metrics.json",
                    default=None, metavar="PATH",
                    help="write the full metrics-registry snapshot as JSON")
    pc.add_argument("--windows", action="store_true",
                    help="arm per-(node, partition) AIMD congestion windows "
                         "on every client; the report asserts they shrink "
                         "under faults without losing acked writes")
    pc.add_argument("--flight-recorder", nargs="?",
                    const="chaos_flight.json", default=None, metavar="PATH",
                    help="record faults/rpc/partition-op series at a fixed "
                         "cadence (per-plan suffix when multiple plans)")
    pc.add_argument("--flight-interval", type=_positive_float, default=1e-4,
                    help="flight-recorder cadence in sim seconds")
    pc.add_argument("--flight-maxlen", type=int, default=512,
                    help="ring-buffer bound per recorded series")
    pc.set_defaults(fn=_cmd_chaos_soak)

    p7 = sub.add_parser("fig7", help="application kernels")
    p7.add_argument("--apps", nargs="+",
                    choices=["isx", "kmer", "contig"], default=None)
    p7.add_argument("--nodes", nargs="+", type=int, default=None)
    p7.add_argument("--procs", type=int, default=3)
    p7.add_argument("--ops", type=int, default=48,
                    help="ISx keys per rank")
    p7.add_argument("--scale", type=_positive_float, default=1.0,
                    help="work multiplier (keys/reads; default 1.0)")
    p7.add_argument("--aggregation", type=int, default=0,
                    help="HCL write-combining buffer size (0 = off)")
    p7.add_argument("--hcl-only", action="store_true",
                    help="skip the BCL comparison runs (full-paper-scale "
                         "sweeps where the client-driven baseline is "
                         "prohibitive)")
    p7.add_argument("--batch-charge", action="store_true",
                    help="fused charging of uncontended coalescer flushes")
    p7.add_argument("--container-sim-only", action="store_true",
                    help="container timing-only mode for isx/kmer")
    p7.set_defaults(fn=_cmd_fig7)

    pk = sub.add_parser("kernelbench",
                        help="DES kernel event-throughput microbenchmark")
    pk.add_argument("--procs", type=int, default=100)
    pk.add_argument("--timeouts", type=int, default=2000,
                    help="timeouts per process")
    pk.add_argument("--repeats", type=int, default=3,
                    help="take the best of N runs")
    pk.add_argument("--no-pooling", action="store_true",
                    help="disable the event free-list pool")
    pk.add_argument("--scheduler", choices=["calendar", "heap"],
                    default="calendar",
                    help="far-lane event structure (identical event order; "
                         "only wall throughput differs)")
    pk.add_argument("--emit", nargs="?", const="BENCH_kernel.json",
                    default=None, metavar="PATH",
                    help="write the reported run as JSON (default "
                         "BENCH_kernel.json).  Opt-in: wall throughput is "
                         "machine-specific, so the committed baseline only "
                         "changes when asked to")
    pk.add_argument("--no-emit", action="store_true",
                    help="(deprecated no-op: emission is opt-in via --emit)")
    pk.add_argument("--trace", nargs="?", const="kernel_trace",
                    default=None, metavar="PREFIX",
                    help="record wall-clock spans per repeat; write "
                         "PREFIX.jsonl + PREFIX_chrome.json")
    pk.add_argument("--metrics-out", nargs="?", const="kernel_metrics.json",
                    default=None, metavar="PATH",
                    help="write the kernel-stat registry snapshot as JSON")
    _add_profile_args(pk, "kernel_profile.json")
    pk.set_defaults(fn=_cmd_kernelbench)

    pa = sub.add_parser(
        "aggbench",
        help="A/B the op-coalescing buffers over the Fig-7 apps",
    )
    pa.add_argument("--scale", type=_positive_float, default=1.0,
                    help="work multiplier (genome/keys; default 1.0)")
    pa.add_argument("--nodes", type=int, default=4)
    pa.add_argument("--procs", type=int, default=3,
                    help="rank processes per node")
    pa.add_argument("--sweep", nargs="+", type=int, default=[0, 8, 64, 512],
                    help="aggregation buffer sizes (0 = off baseline)")
    pa.add_argument("--apps", nargs="+",
                    choices=["kmer", "contig", "isx"],
                    default=["kmer", "contig", "isx"])
    pa.add_argument("--repeats", type=int, default=2,
                    help="wall time takes the best of N runs")
    pa.add_argument("--sim-only", action="store_true",
                    help="omit wall-clock fields (deterministic JSON)")
    pa.add_argument("--batch-charge", action="store_true",
                    help="fused closed-form charging of uncontended "
                         "coalescer flushes (results still verified)")
    pa.add_argument("--container-sim-only", action="store_true",
                    help="container timing-only mode for isx/kmer: stubbed "
                         "payloads + cheap invariant verification; sim "
                         "times are bit-identical to full-data runs")
    pa.add_argument("--emit", nargs="?", const="BENCH_agg.json",
                    default=None, metavar="PATH",
                    help="write the sweep as JSON (default BENCH_agg.json)")
    pa.add_argument("--check", action="store_true",
                    help="exit 1 unless contig+kmer clear --min-speedup")
    pa.add_argument("--min-speedup", type=_positive_float, default=1.0,
                    help="speedup floor for --check (default 1.0)")
    pa.add_argument("--trace", nargs="?", const="agg_trace",
                    default=None, metavar="PREFIX",
                    help="trace one run per (app, buffer) combo; write "
                         "PREFIX_<label>.jsonl + PREFIX_<label>_chrome.json")
    pa.add_argument("--metrics-out", nargs="?", const="agg_metrics.json",
                    default=None, metavar="PATH",
                    help="write per-run metrics-registry snapshots as JSON")
    _add_profile_args(pa, "agg_profile.json")
    pa.set_defaults(fn=_cmd_aggbench)

    pb = sub.add_parser(
        "asyncbench",
        help="A/B the pipelined async-futures client (AIMD windows + "
             "self-tuning coalescer) against the aggregated sync path",
    )
    pb.add_argument("--scale", type=_positive_float, default=1.0,
                    help="work multiplier (genome/reads; default 1.0)")
    pb.add_argument("--nodes", type=int, default=4)
    pb.add_argument("--procs", type=int, default=3,
                    help="rank processes per node")
    pb.add_argument("--repeats", type=int, default=3,
                    help="wall time takes the best of N runs")
    pb.add_argument("--sim-only", action="store_true",
                    help="omit wall-clock fields (deterministic JSON)")
    pb.add_argument("--emit", nargs="?", const="BENCH_async.json",
                    default=None, metavar="PATH",
                    help="write rows + summary as JSON "
                         "(default BENCH_async.json)")
    pb.add_argument("--metrics-out", nargs="?", const="async_metrics.json",
                    default=None, metavar="PATH",
                    help="write per-run metrics snapshots (rpc/cwnd/*, "
                         "rpc/window_stalls, coalesce/auto_threshold)")
    pb.add_argument("--flight-recorder", nargs="?",
                    const="async_flight.json", default=None, metavar="PATH",
                    help="record rpc/coalesce/partition-op series on each "
                         "row's first repeat (per-row label suffix)")
    pb.add_argument("--flight-interval", type=_positive_float, default=1e-5,
                    help="flight-recorder cadence in sim seconds")
    pb.add_argument("--flight-maxlen", type=int, default=512,
                    help="ring-buffer bound per recorded series")
    pb.add_argument("--check", action="store_true",
                    help="exit 1 unless async-auto clears --min-speedup "
                         "with identical digests and matches the best "
                         "static threshold within 10%")
    pb.add_argument("--min-speedup", type=_positive_float, default=1.5,
                    help="wall-speedup floor for --check (default 1.5)")
    _add_profile_args(pb, "async_profile.json")
    pb.set_defaults(fn=_cmd_asyncbench)

    pt = sub.add_parser(
        "trace",
        help="span tracing: validate exported traces, or run a traced demo",
    )
    pt.add_argument("--validate", nargs="+", default=None, metavar="PATH",
                    help="validate span logs (.jsonl) / Chrome traces "
                         "(.json) instead of running a demo")
    pt.add_argument("--app", choices=["isx", "kmer", "contig"],
                    default="isx", help="demo app to trace")
    pt.add_argument("--scale", type=_positive_float, default=0.25,
                    help="work multiplier for the demo run")
    pt.add_argument("--nodes", type=int, default=2)
    pt.add_argument("--procs", type=int, default=2,
                    help="rank processes per node")
    pt.add_argument("--aggregation", type=int, default=0,
                    help="buffer size for the demo (adds coalesce spans)")
    pt.add_argument("--emit", nargs="?", const="trace_demo",
                    default=None, metavar="PREFIX",
                    help="write the demo's PREFIX.jsonl + PREFIX_chrome.json")
    pt.set_defaults(fn=_cmd_trace)

    pT = sub.add_parser(
        "telemetry",
        help="Fig-4-style time series: NIC %%, memory %%, packet rate",
    )
    pT.add_argument("--scale", type=_positive_float, default=1.0,
                    help="work multiplier (keys/reads; default 1.0)")
    pT.add_argument("--nodes", type=int, default=4)
    pT.add_argument("--procs", type=int, default=3,
                    help="rank processes per node")
    pT.add_argument("--samples", type=int, default=32,
                    help="sample points across the run (default 32)")
    pT.add_argument("--aggregation", type=int, default=8,
                    help="write-combining buffer size (0 = off)")
    pT.add_argument("--apps", nargs="+",
                    choices=["isx", "kmer", "contig"], default=None,
                    help="apps to sample (default: isx contig)")
    pT.add_argument("--emit", nargs="?", const="BENCH_telemetry.json",
                    default=None, metavar="PATH",
                    help="write the series (default BENCH_telemetry.json)")
    pT.add_argument("--check", action="store_true",
                    help="exit 1 if any series is empty or a probe failed")
    pT.set_defaults(fn=_cmd_telemetry)

    pS = sub.add_parser(
        "serving",
        help="Zipfian serving bench: SLO percentiles + backpressure A/B",
    )
    pS.add_argument("--nodes", type=int, default=64)
    pS.add_argument("--procs", type=int, default=4,
                    help="rank processes per node")
    pS.add_argument("--clients", type=int, default=100_000,
                    help="simulated open-loop clients (Poisson superposed)")
    pS.add_argument("--tenants", type=int, default=8)
    pS.add_argument("--theta", type=float, default=0.99,
                    help="Zipf skew (0 = uniform)")
    pS.add_argument("--keys", type=int, default=16_384,
                    help="keys per tenant namespace")
    pS.add_argument("--mix", nargs=3, type=float, default=[0.70, 0.20, 0.10],
                    metavar=("READ", "WRITE", "RMW"),
                    help="map-op mix fractions (must sum to 1)")
    pS.add_argument("--queue-frac", type=float, default=0.10,
                    help="fraction of ops hitting the tenant FIFO queues")
    pS.add_argument("--queue-home", choices=["packed", "spread"],
                    default="packed",
                    help="tenant-queue placement: packed = all on node 0 "
                         "(the serving hotspot), spread = round-robin")
    pS.add_argument("--rate", type=float, default=100.0,
                    help="per-client Poisson arrival rate (ops/s)")
    pS.add_argument("--ops-per-client", type=float, default=1.0)
    pS.add_argument("--seed", type=int, default=7)
    pS.add_argument("--bounds", nargs="+", default=["off", "64"],
                    metavar="BOUND",
                    help="admission-control settings to A/B ('off' = "
                         "unbounded; integers arm load shedding)")
    pS.add_argument("--shed-retries", type=int, default=1,
                    help="client retries per shed op (0 = surface the error)")
    pS.add_argument("--retry-backoff", type=_positive_float, default=1e-3,
                    help="base retry backoff in sim seconds (doubles per "
                         "attempt)")
    pS.add_argument("--batch", type=int, default=1,
                    help="server request-aggregation batch size")
    pS.add_argument("--emit", nargs="?", const="BENCH_serving.json",
                    default=None, metavar="PATH",
                    help="write the report (default BENCH_serving.json)")
    pS.add_argument("--flight-recorder", nargs="?",
                    const="serving_flight.json", default=None, metavar="PATH",
                    help="arm the flight recorder + skew/SLO monitors; "
                         "writes one JSON per bound (PATH_off / PATH_b<N>). "
                         "Simulated results are unchanged")
    pS.add_argument("--flight-interval", type=_positive_float, default=2.5e-4,
                    help="flight-recorder cadence in sim seconds")
    pS.add_argument("--flight-maxlen", type=int, default=512,
                    help="ring-buffer bound per recorded series")
    pS.add_argument("--check", action="store_true",
                    help="exit 1 on sanity failures (accounting, SLO keys, "
                         "fairness, starved tenants)")
    pS.add_argument("--require-cliff", action="store_true",
                    help="also fail unless unbounded p99 >= cliff-factor x "
                         "the bounded p99")
    pS.add_argument("--cliff-factor", type=_positive_float, default=3.0)
    _add_profile_args(pS, "serving_profile.json")
    pS.set_defaults(fn=_cmd_serving)

    pO = sub.add_parser(
        "obs-report",
        help="render a self-contained HTML dashboard from flight-recorder "
             "JSON, span JSONL, and/or metrics snapshots",
    )
    pO.add_argument("--flight", default=None, metavar="PATH",
                    help="flight-recorder JSON (serving --flight-recorder "
                         "output; includes skew + SLO sections)")
    pO.add_argument("--spans", default=None, metavar="PATH",
                    help="span JSONL (trace --export output) for the "
                         "critical-path analysis")
    pO.add_argument("--metrics", default=None, metavar="PATH",
                    help="metrics snapshot JSON (--metrics-out output)")
    pO.add_argument("-o", "--out", default="obs_report.html", metavar="PATH",
                    help="dashboard output path (default obs_report.html)")
    pO.add_argument("--title", default="Observability report")
    pO.add_argument("--top-traces", type=int, default=5,
                    help="slowest traces listed in the critical-path table")
    pO.add_argument("--compare", default=None, metavar="PATH",
                    help="second flight-recorder JSON: render the A/B "
                         "comparison dashboard (overlaid sparklines + "
                         "delta tables; --flight is run A)")
    pO.add_argument("--validate", default=None, metavar="PATH",
                    help="validate an existing dashboard instead of "
                         "rendering one (CI mode)")
    pO.set_defaults(fn=_cmd_obs_report)

    pD = sub.add_parser(
        "obs-diff",
        help="differential run forensics: diff two runs (BENCH JSON, "
             "flight JSON, span JSONL, metrics, profiles) and fingerprint "
             "the dominant cause",
    )
    pD.add_argument("a", metavar="A", help="reference run (baseline)")
    pD.add_argument("b", metavar="B", help="candidate run (fresh)")
    pD.add_argument("--threshold", type=_positive_float, default=0.10,
                    help="relative-change significance threshold "
                         "(default 0.10; wall-clock metrics use at least "
                         "0.50)")
    pD.add_argument("--top", type=int, default=40,
                    help="rows kept per delta section (default 40)")
    pD.add_argument("--max-rows", type=int, default=20,
                    help="rows printed per section in the report")
    pD.add_argument("--json", nargs="?", const="run_diff.json",
                    default=None, metavar="PATH",
                    help="write the structured RunDiff as JSON")
    pD.add_argument("--md", nargs="?", const="run_diff.md",
                    default=None, metavar="PATH",
                    help="write the markdown forensics report")
    pD.add_argument("--html", nargs="?", const="run_diff.html",
                    default=None, metavar="PATH",
                    help="render the A/B dashboard (overlaid sparklines "
                         "when both runs are flight recordings)")
    pD.add_argument("--fail-on-significant", action="store_true",
                    help="exit 1 when significant differences are found "
                         "(CI self-diff mode)")
    pD.set_defaults(fn=_cmd_obs_diff)

    pm = sub.add_parser("microbench", help="OSU-style fabric microbenchmarks")
    pm.add_argument("--provider", default="roce",
                    choices=["roce", "verbs", "tcp"])
    pm.set_defaults(fn=_cmd_microbench)

    ps = sub.add_parser("sweep", help="free-form throughput sweep")
    ps.add_argument("--nodes", nargs="+", type=int, default=[2, 4, 8])
    ps.add_argument("--procs", type=int, default=6)
    ps.add_argument("--ops", type=int, default=32)
    ps.add_argument("--size", type=int, default=4 * KB)
    ps.add_argument("--provider", default="roce",
                    choices=["roce", "verbs", "tcp"])
    ps.set_defaults(fn=_cmd_sweep)
    return parser


def main(argv: List[str] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
