"""Command-line interface: run reproduction experiments without pytest.

::

    python -m repro.cli list                 # what can I run?
    python -m repro.cli fig1                 # the motivating test case
    python -m repro.cli fig5 --sizes 4096 1048576
    python -m repro.cli fig7 --apps isx kmer --nodes 2 4
    python -m repro.cli sweep --nodes 2 4 8 --ops 64 --size 65536

Each command builds the same scaled experiment as the corresponding bench
in ``benchmarks/`` and prints the paper-style table.  The pytest benches
remain the canonical, asserted versions; the CLI is for interactive
exploration (changing sizes, node counts, providers) without editing code.
"""

from __future__ import annotations

import argparse
import sys
from typing import List

from repro.config import KB, MB, ares_like
from repro.harness import render_series, render_table


def _cmd_fig1(args) -> int:
    from benchmarks.test_fig1_motivation import _run_rpc, run_bcl, SCALE

    t_bcl, stages = run_bcl()
    t_cas = _run_rpc(lock_free=False)
    t_lf = _run_rpc(lock_free=True)
    print(render_table(
        "Fig 1 — motivating test",
        ["approach", "sim (s)", "extrapolated (s)", "speedup"],
        [["BCL", t_bcl, t_bcl * SCALE, 1.0],
         ["RPC with CAS", t_cas, t_cas * SCALE, t_bcl / t_cas],
         ["RPC lock-free", t_lf, t_lf * SCALE, t_bcl / t_lf]],
    ))
    return 0


def _cmd_fig5(args) -> int:
    from benchmarks import test_fig5_hybrid as f5

    sizes = args.sizes or f5.SIZES
    saved = f5.SIZES
    f5.SIZES = sizes
    try:
        for local, label in ((True, "intra-node"), (False, "inter-node")):
            sweep = f5._sweep(local=local)
            labels = [f"{s // KB}KB" if s < MB else f"{s // MB}MB"
                      for s in sizes]
            print(render_series(f"Fig 5 {label} bandwidth MB/s", "op size",
                                labels, sweep))
            print()
    finally:
        f5.SIZES = saved
    return 0


def _cmd_fig6(args) -> int:
    from benchmarks import conftest as bench_conf
    from benchmarks import test_fig6_scaling as f6

    bench_conf.set_scale(args.scale)
    series = {"hcl_umap_ins": [], "hcl_map_ins": [], "bcl_umap_ins": []}
    parts = args.partitions or f6.PART_SWEEP
    for p in parts:
        ui, _uf = f6._hcl_map_run(p, ordered=False)
        oi, _of = f6._hcl_map_run(p, ordered=True)
        bi, _bf = f6._bcl_map_run(p)
        series["hcl_umap_ins"].append(ui)
        series["hcl_map_ins"].append(oi)
        series["bcl_umap_ins"].append(bi)
    print(render_series("Fig 6a — insert throughput op/s", "partitions",
                        parts, series))
    if args.emit:
        import json

        with open(args.emit, "w", encoding="utf-8") as fh:
            json.dump({"partitions": list(parts), "series": series},
                      fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.emit}")
    return 0


def _cmd_chaos_soak(args) -> int:
    from repro.harness.chaos import emit_report, render_report, run_chaos_soak

    worst = 0
    for plan in args.plans:
        report = run_chaos_soak(
            plan=plan,
            seed=args.seed,
            nodes=args.nodes,
            procs_per_node=args.procs,
            keys_per_rank=args.keys,
            kmers_per_rank=args.kmers,
            horizon=args.horizon,
            aggregation=args.aggregation,
        )
        print(render_report(report))
        if args.emit:
            path = (args.emit if len(args.plans) == 1
                    else args.emit.replace(".json", f"_{plan}.json"))
            emit_report(report, path)
            print(f"wrote {path}")
        if not report["ok"]:
            worst = 1
    return worst


def _cmd_fig7(args) -> int:
    from repro.apps import (
        run_contig_generation, run_isx, run_kmer_counting, synthesize_genome,
    )

    def sc(n: int) -> int:
        return max(1, round(n * args.scale))

    apps = args.apps or ["isx", "kmer", "contig"]
    nodes_sweep = args.nodes or [2, 4, 8]
    for app in apps:
        rows = []
        for nodes in nodes_sweep:
            spec = ares_like(nodes=nodes, procs_per_node=args.procs)
            if app == "isx":
                h = run_isx("hcl", spec, keys_per_rank=sc(args.ops))
                b = run_isx("bcl", spec, keys_per_rank=sc(args.ops))
            else:
                data = synthesize_genome(
                    genome_length=sc(300 * nodes), num_reads=sc(24 * nodes),
                    read_length=60, k=15, seed=nodes,
                )
                runner = (run_kmer_counting if app == "kmer"
                          else run_contig_generation)
                h = runner("hcl", spec, data)
                b = runner("bcl", spec, data)
            assert h.verified and b.verified, f"{app} failed verification"
            rows.append([nodes, b.time_seconds, h.time_seconds,
                         b.time_seconds / h.time_seconds])
        print(render_table(
            f"Fig 7 — {app} weak scaling",
            ["nodes", "bcl (s)", "hcl (s)", "speedup"], rows,
        ))
        print()
    return 0


def _cmd_sweep(args) -> int:
    """Free-form insert-throughput sweep over nodes/ops/size/provider."""
    from repro.core import HCL
    from repro.harness import Blob

    rows = []
    for nodes in args.nodes:
        spec = ares_like(nodes=nodes, procs_per_node=args.procs)
        hcl = HCL(spec, provider=args.provider)
        m = hcl.unordered_map("m", partitions=nodes,
                              initial_buckets=8 * args.procs * args.ops)

        def body(rank):
            for i in range(args.ops):
                yield from m.insert(rank, (rank, i), Blob(args.size))

        hcl.run_ranks(body)
        total = spec.total_procs * args.ops
        rows.append([nodes, spec.total_procs, hcl.now,
                     total / hcl.now,
                     total * args.size / hcl.now / MB])
    print(render_table(
        f"unordered_map insert sweep ({args.size} B ops, "
        f"provider={args.provider})",
        ["nodes", "clients", "sim time (s)", "op/s", "MB/s"], rows,
    ))
    return 0


def _cmd_microbench(args) -> int:
    from repro.harness.microbench import run_microbench

    report = run_microbench(
        ares_like(nodes=2, procs_per_node=4), provider=args.provider
    )
    print(render_table(
        f"Simulated fabric microbenchmarks (provider={args.provider}; "
        "paper calibration: OSU ~4.5 GB/s, STREAM ~65 GB/s)",
        ["metric", "value"], report.rows(),
    ))
    return 0


def _cmd_kernelbench(args) -> int:
    from repro.harness.kernelbench import emit_bench_json, kernel_events_per_sec

    rep = kernel_events_per_sec(
        repeats=args.repeats,
        procs=args.procs,
        timeouts_per_proc=args.timeouts,
        pooling=not args.no_pooling,
    )
    print(render_table(
        "DES kernel throughput (wall clock; best of "
        f"{args.repeats} runs)",
        ["metric", "value"], rep.rows(),
    ))
    if args.emit:
        print(f"wrote {emit_bench_json(rep, args.emit)}")
    return 0


def _cmd_aggbench(args) -> int:
    from repro.harness.aggbench import emit_agg_json, run_agg_bench

    report = run_agg_bench(
        scale=args.scale,
        nodes=args.nodes,
        procs_per_node=args.procs,
        sweep=args.sweep,
        apps=args.apps,
        repeats=args.repeats,
        sim_only=args.sim_only,
    )
    print(render_table(
        f"Aggregation sweep (scale={args.scale}, "
        f"{args.nodes}x{args.procs} ranks)",
        ["app", "buffer", "sim (s)", "wall (s)", "ops/s",
         "ops/flush", "hit rate"],
        report.table_rows(),
    ))
    for app, entry in sorted(report.speedups().items()):
        metric = "sim" if args.sim_only else "wall"
        print(f"  {app}: best {metric} speedup "
              f"{entry.get(f'{metric}_speedup', 0):.2f}x "
              f"(buffer={entry['aggregation']})")
    if args.emit:
        print(f"wrote {emit_agg_json(report, args.emit)}")
    if args.check:
        failures = report.check(min_speedup=args.min_speedup)
        for failure in failures:
            print(f"CHECK FAILED: {failure}", file=sys.stderr)
        return 1 if failures else 0
    return 0


def _cmd_list(args) -> int:
    print("commands: fig1 fig5 fig6 fig7 sweep microbench kernelbench "
          "aggbench chaos-soak list")
    print("full asserted reproduction: pytest benchmarks/ --benchmark-only -s")
    return 0


def _positive_float(text: str) -> float:
    value = float(text)
    if value <= 0:
        raise argparse.ArgumentTypeError(f"must be positive, got {text}")
    return value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.cli",
        description="HCL reproduction experiments (CLUSTER 2020)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list commands").set_defaults(fn=_cmd_list)
    sub.add_parser("fig1", help="motivating test").set_defaults(fn=_cmd_fig1)

    p5 = sub.add_parser("fig5", help="hybrid access bandwidth sweep")
    p5.add_argument("--sizes", nargs="+", type=int, default=None)
    p5.set_defaults(fn=_cmd_fig5)

    p6 = sub.add_parser("fig6", help="container scaling")
    p6.add_argument("--partitions", nargs="+", type=int, default=None)
    p6.add_argument("--scale", type=_positive_float, default=1.0,
                    help="work multiplier (ops per rank; default 1.0)")
    p6.add_argument("--emit", nargs="?", const="BENCH_fig6.json",
                    default=None, metavar="PATH",
                    help="write the series as JSON (default BENCH_fig6.json)")
    p6.set_defaults(fn=_cmd_fig6)

    from repro.fabric.faults import PLAN_NAMES

    pc = sub.add_parser(
        "chaos-soak",
        help="fault-injection soak: paper workloads under a chaos plan, "
             "asserting no acked write is lost",
    )
    pc.add_argument("--plans", nargs="+", choices=list(PLAN_NAMES),
                    default=["mixed"], help="fault plans to run")
    pc.add_argument("--seed", type=int, default=0)
    pc.add_argument("--nodes", type=int, default=3)
    pc.add_argument("--procs", type=int, default=2,
                    help="rank processes per node")
    pc.add_argument("--keys", type=int, default=24,
                    help="ISx-style inserts per rank")
    pc.add_argument("--kmers", type=int, default=16,
                    help="k-mer upserts per rank")
    pc.add_argument("--horizon", type=_positive_float, default=2e-3,
                    help="sim-time horizon the fault windows scale to (s)")
    pc.add_argument("--aggregation", type=int, default=0,
                    help="run upserts through N-op write-combining buffers "
                         "and the read cache, asserting never-stale reads")
    pc.add_argument("--emit", nargs="?", const="chaos_soak.json",
                    default=None, metavar="PATH",
                    help="write report JSON (per-plan suffix when multiple)")
    pc.set_defaults(fn=_cmd_chaos_soak)

    p7 = sub.add_parser("fig7", help="application kernels")
    p7.add_argument("--apps", nargs="+",
                    choices=["isx", "kmer", "contig"], default=None)
    p7.add_argument("--nodes", nargs="+", type=int, default=None)
    p7.add_argument("--procs", type=int, default=3)
    p7.add_argument("--ops", type=int, default=48,
                    help="ISx keys per rank")
    p7.add_argument("--scale", type=_positive_float, default=1.0,
                    help="work multiplier (keys/reads; default 1.0)")
    p7.set_defaults(fn=_cmd_fig7)

    pk = sub.add_parser("kernelbench",
                        help="DES kernel event-throughput microbenchmark")
    pk.add_argument("--procs", type=int, default=100)
    pk.add_argument("--timeouts", type=int, default=2000,
                    help="timeouts per process")
    pk.add_argument("--repeats", type=int, default=3,
                    help="take the best of N runs")
    pk.add_argument("--no-pooling", action="store_true",
                    help="disable the event free-list pool")
    pk.add_argument("--emit", nargs="?", const="BENCH_kernel.json",
                    default=None, metavar="PATH",
                    help="write the result as JSON (default BENCH_kernel.json)")
    pk.set_defaults(fn=_cmd_kernelbench)

    pa = sub.add_parser(
        "aggbench",
        help="A/B the op-coalescing buffers over the Fig-7 apps",
    )
    pa.add_argument("--scale", type=_positive_float, default=1.0,
                    help="work multiplier (genome/keys; default 1.0)")
    pa.add_argument("--nodes", type=int, default=4)
    pa.add_argument("--procs", type=int, default=3,
                    help="rank processes per node")
    pa.add_argument("--sweep", nargs="+", type=int, default=[0, 8, 64, 512],
                    help="aggregation buffer sizes (0 = off baseline)")
    pa.add_argument("--apps", nargs="+",
                    choices=["kmer", "contig", "isx"],
                    default=["kmer", "contig", "isx"])
    pa.add_argument("--repeats", type=int, default=2,
                    help="wall time takes the best of N runs")
    pa.add_argument("--sim-only", action="store_true",
                    help="omit wall-clock fields (deterministic JSON)")
    pa.add_argument("--emit", nargs="?", const="BENCH_agg.json",
                    default=None, metavar="PATH",
                    help="write the sweep as JSON (default BENCH_agg.json)")
    pa.add_argument("--check", action="store_true",
                    help="exit 1 unless contig+kmer clear --min-speedup")
    pa.add_argument("--min-speedup", type=_positive_float, default=1.0,
                    help="speedup floor for --check (default 1.0)")
    pa.set_defaults(fn=_cmd_aggbench)

    pm = sub.add_parser("microbench", help="OSU-style fabric microbenchmarks")
    pm.add_argument("--provider", default="roce",
                    choices=["roce", "verbs", "tcp"])
    pm.set_defaults(fn=_cmd_microbench)

    ps = sub.add_parser("sweep", help="free-form throughput sweep")
    ps.add_argument("--nodes", nargs="+", type=int, default=[2, 4, 8])
    ps.add_argument("--procs", type=int, default=6)
    ps.add_argument("--ops", type=int, default=32)
    ps.add_argument("--size", type=int, default=4 * KB)
    ps.add_argument("--provider", default="roce",
                    choices=["roce", "verbs", "tcp"])
    ps.set_defaults(fn=_cmd_sweep)
    return parser


def main(argv: List[str] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
