"""Futures for asynchronous RPC (Section III-C4).

"Each function invocation creates a future object (much like C++ future and
wait operations) ... providing synchronous and asynchronous models is a
matter of timing when the caller waits for the future object."

An :class:`RPCFuture` wraps the kernel event that fires when the response
has been pulled.  ``yield fut.wait()`` blocks the calling process;
``fut.done`` polls; ``fut.then(fn)`` chains a local continuation.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.fabric.node import NodeDownError
from repro.simnet.core import Event, Simulator

__all__ = ["RPCFuture", "RemoteError", "ServerOverloaded", "TargetUnavailable"]


class RemoteError(RuntimeError):
    """An exception raised inside a remote handler, re-raised at the caller."""

    def __init__(self, op: str, original: str):
        super().__init__(f"remote handler {op!r} failed: {original}")
        self.op = op
        self.original = original


class ServerOverloaded(RemoteError):
    """The target's bounded RPC receive queue was full; the op was shed.

    Admission control (``RpcServer(queue_bound=...)``) rejected the request
    at the receive queue, *before* execution — the handler never ran, so
    there are no remote side effects and the caller may safely re-issue
    (with the same idempotency token on the hardened path).  Deliberately
    NOT a :class:`~repro.fabric.node.NodeDownError`: the target is alive
    and answering, just saturated, so container failover must not kick in.
    """

    def __init__(self, op: str, dst_node: int, depth: int, bound: int):
        RuntimeError.__init__(
            self,
            f"rpc {op!r} shed by node {dst_node}: receive queue full "
            f"({depth}/{bound})"
        )
        self.op = op
        self.original = "server overloaded"
        self.dst_node = dst_node
        self.depth = depth
        self.bound = bound


class TargetUnavailable(NodeDownError):
    """The retry budget for an invocation is exhausted.

    Surfaced to callers after ``1 + RetryPolicy.max_retries`` attempts all
    failed (dropped on the wire, target crashed, or completion timed out).
    Subclasses :class:`~repro.fabric.node.NodeDownError` (a
    ``ConnectionError``) so container-level failover catches it.
    """

    def __init__(self, op: str, dst_node: int, attempts: int, phase: str):
        super().__init__(
            f"rpc {op!r} to node {dst_node}: target unavailable after "
            f"{attempts} attempts ({phase})"
        )
        self.op = op
        self.dst_node = dst_node
        self.attempts = attempts
        self.phase = phase


class RPCFuture:
    """Handle to an in-flight invocation."""

    __slots__ = ("sim", "op", "_event", "issued_at", "completed_at")

    def __init__(self, sim: Simulator, op: str):
        self.sim = sim
        self.op = op
        self._event = Event(sim)
        self.issued_at = sim.now
        self.completed_at: Optional[float] = None

    # -- producer side ----------------------------------------------------------
    def _complete(self, value: Any) -> None:
        self.completed_at = self.sim.now
        self._event.succeed(value)

    def _error(self, exc: BaseException) -> None:
        self.completed_at = self.sim.now
        self._event.fail(exc)

    # -- consumer side -------------------------------------------------------------
    @property
    def done(self) -> bool:
        return self._event.triggered

    def wait(self) -> Event:
        """The event to ``yield`` on; its value is the RPC result."""
        return self._event

    @property
    def result(self) -> Any:
        if not self.done:
            raise RuntimeError(f"RPC {self.op!r} not complete; yield wait() first")
        if not self._event.ok:
            raise self._event.value
        return self._event.value

    @property
    def latency(self) -> float:
        if self.completed_at is None:
            raise RuntimeError("future not complete")
        return self.completed_at - self.issued_at

    def then(self, fn: Callable[[Any], Any]) -> "RPCFuture":
        """Chain a local continuation; returns a new future of ``fn(result)``."""
        nxt = RPCFuture(self.sim, f"{self.op}+then")

        def on_done(ev: Event) -> None:
            if not ev.ok:
                nxt._error(ev.value)
                return
            try:
                nxt._complete(fn(ev.value))
            except BaseException as err:
                nxt._error(err)

        self._event.add_callback(on_done)
        return nxt

    def __repr__(self) -> str:  # pragma: no cover
        state = "done" if self.done else "pending"
        return f"<RPCFuture {self.op} {state}>"
