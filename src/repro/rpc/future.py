"""Futures for asynchronous RPC (Section III-C4).

"Each function invocation creates a future object (much like C++ future and
wait operations) ... providing synchronous and asynchronous models is a
matter of timing when the caller waits for the future object."

An :class:`RPCFuture` settles when the response has been pulled.  ``yield
fut.wait()`` blocks the calling process; ``fut.done`` polls; ``fut.then(fn)``
/ ``fut.catch(fn)`` chain local continuations promise-style.

The kernel :class:`Event` backing ``wait()`` is materialized lazily: a
fire-and-forget pipelined op whose caller only ever chains callbacks never
allocates an Event or pushes a settle entry through the scheduler lanes.
Waiters and ``_event`` consumers see the exact semantics the eager event
gave them — a pending wait parks on a real pending Event that the settle
path triggers through the kernel, and a wait attached after settling gets a
``sim.completed_event`` (immediate resume, synchronous ``add_callback``).

Chained callbacks registered via ``then``/``catch`` run synchronously at
settle time (or immediately when chaining onto an already-settled future).
That immediacy is what fixes post-run chains: building ``f.then(a).then(b)``
after the simulation has drained used to strand ``b``'s future on an event
the kernel would never process, silently swallowing ``a``'s exception —
now the chain settles inline and the error surfaces at ``.result``.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.fabric.node import NodeDownError
from repro.simnet.core import Event, Simulator

__all__ = ["RPCFuture", "RemoteError", "ServerOverloaded", "TargetUnavailable"]


class RemoteError(RuntimeError):
    """An exception raised inside a remote handler, re-raised at the caller."""

    def __init__(self, op: str, original: str):
        super().__init__(f"remote handler {op!r} failed: {original}")
        self.op = op
        self.original = original


class ServerOverloaded(RemoteError):
    """The target's bounded RPC receive queue was full; the op was shed.

    Admission control (``RpcServer(queue_bound=...)``) rejected the request
    at the receive queue, *before* execution — the handler never ran, so
    there are no remote side effects and the caller may safely re-issue
    (with the same idempotency token on the hardened path).  Deliberately
    NOT a :class:`~repro.fabric.node.NodeDownError`: the target is alive
    and answering, just saturated, so container failover must not kick in.
    """

    def __init__(self, op: str, dst_node: int, depth: int, bound: int):
        RuntimeError.__init__(
            self,
            f"rpc {op!r} shed by node {dst_node}: receive queue full "
            f"({depth}/{bound})"
        )
        self.op = op
        self.original = "server overloaded"
        self.dst_node = dst_node
        self.depth = depth
        self.bound = bound


class TargetUnavailable(NodeDownError):
    """The retry budget for an invocation is exhausted.

    Surfaced to callers after ``1 + RetryPolicy.max_retries`` attempts all
    failed (dropped on the wire, target crashed, or completion timed out).
    Subclasses :class:`~repro.fabric.node.NodeDownError` (a
    ``ConnectionError``) so container-level failover catches it.
    """

    def __init__(self, op: str, dst_node: int, attempts: int, phase: str):
        super().__init__(
            f"rpc {op!r} to node {dst_node}: target unavailable after "
            f"{attempts} attempts ({phase})"
        )
        self.op = op
        self.dst_node = dst_node
        self.attempts = attempts
        self.phase = phase


class RPCFuture:
    """Handle to an in-flight invocation."""

    __slots__ = ("sim", "op", "issued_at", "completed_at",
                 "_value", "_ok", "_settled", "_callbacks", "_ev")

    def __init__(self, sim: Simulator, op: str):
        self.sim = sim
        self.op = op
        self.issued_at = sim.now
        self.completed_at: Optional[float] = None
        self._value: Any = None
        self._ok = True
        self._settled = False
        self._callbacks: Optional[list] = None
        self._ev: Optional[Event] = None

    # -- producer side ----------------------------------------------------------
    def _complete(self, value: Any) -> None:
        self._settle(value, True)

    def _error(self, exc: BaseException) -> None:
        self._settle(exc, False)

    def _settle(self, value: Any, ok: bool) -> None:
        if self._settled:
            raise RuntimeError(f"RPC future {self.op!r} already settled")
        self.completed_at = self.sim.now
        self._value = value
        self._ok = ok
        self._settled = True
        ev = self._ev
        if ev is not None:
            # Someone is waiting on the kernel event: route the settle
            # through the scheduler exactly as the eager design did.
            if ok:
                ev.succeed(value)
            else:
                ev.fail(value)
        cbs = self._callbacks
        if cbs:
            self._callbacks = None
            for cb in cbs:
                cb(self)

    def _on_settle(self, cb: Callable[["RPCFuture"], None]) -> None:
        """Run ``cb(self)`` when settled — immediately if already settled.

        Runs synchronously inside the producer's settle (no kernel event),
        so it observes the exact completion instant.  This is the hook the
        window layer and per-op batch distribution ride.
        """
        if self._settled:
            cb(self)
        elif self._callbacks is None:
            self._callbacks = [cb]
        else:
            self._callbacks.append(cb)

    # -- consumer side -------------------------------------------------------------
    @property
    def _event(self) -> Event:
        """The kernel event backing ``wait()``, materialized on demand."""
        ev = self._ev
        if ev is None:
            if self._settled:
                ev = self.sim.completed_event(self._value, ok=self._ok)
            else:
                ev = Event(self.sim)
            self._ev = ev
        return ev

    @property
    def done(self) -> bool:
        return self._settled

    @property
    def ok(self) -> bool:
        """Whether the settled future holds a value (vs an error)."""
        if not self._settled:
            raise RuntimeError(f"RPC {self.op!r} not complete; yield wait() first")
        return self._ok

    def wait(self) -> Event:
        """The event to ``yield`` on; its value is the RPC result."""
        return self._event

    @property
    def result(self) -> Any:
        if not self._settled:
            raise RuntimeError(f"RPC {self.op!r} not complete; yield wait() first")
        if not self._ok:
            raise self._value
        return self._value

    @property
    def latency(self) -> float:
        if self.completed_at is None:
            raise RuntimeError("future not complete")
        return self.completed_at - self.issued_at

    def then(self, fn: Callable[[Any], Any]) -> "RPCFuture":
        """Chain a local continuation; returns a new future of ``fn(result)``.

        An error — from this future or raised inside ``fn`` — propagates to
        the returned future (and onward through further ``then`` links) until
        a ``catch`` handles it or ``.result`` re-raises it.
        """
        return self._chain(fn, None, "+then")

    def catch(self, fn: Callable[[BaseException], Any]) -> "RPCFuture":
        """Chain an error handler; returns a recovered future.

        On failure the returned future settles with ``fn(exc)`` (or fails
        with whatever ``fn`` raises); on success the value passes through
        untouched.
        """
        return self._chain(None, fn, "+catch")

    def _chain(self, on_value, on_error, suffix: str) -> "RPCFuture":
        nxt = RPCFuture(self.sim, f"{self.op}{suffix}")

        def deliver(src: "RPCFuture") -> None:
            if src._ok:
                fn = on_value
            else:
                fn = on_error
            if fn is None:
                nxt._settle(src._value, src._ok)
                return
            try:
                out = fn(src._value)
            except BaseException as err:
                nxt._settle(err, False)
            else:
                nxt._settle(out, True)

        self._on_settle(deliver)
        return nxt

    def __repr__(self) -> str:  # pragma: no cover
        state = "done" if self.done else "pending"
        return f"<RPCFuture {self.op} {state}>"
