"""The client stub (Fig 2, left side).

``invoke()`` marshals the call into a DataBox-sized SEND, fires it at the
target node's request buffer, and returns an :class:`RPCFuture`
immediately — asynchronous by default, per Section III-C4.  A detached
protocol process completes the future:

1. RDMA_SEND of the request (size = marshalled arguments),
2. wait for the server's completion notification (the ``ibv_get_cq_event``
   of the paper),
3. RDMA_READ of the response buffer slot (client-pull),
4. decode the envelope and settle the future.

``call()`` is the synchronous convenience: ``result = yield from
client.call(...)``.

The hybrid data access model lives one layer up (``repro.core.container``):
a container only builds an RpcClient invocation for *remote* partitions.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.rpc.future import RemoteError, RPCFuture
from repro.rpc.server import RpcRequest, RpcServer
from repro.serialization.databox import estimate_size
from repro.simnet.stats import Counter, Histogram

__all__ = ["RpcClient"]

_REQUEST_HEADER_BYTES = 48  # op name, slot, caller id, framing


class RpcClient:
    """Issues RoR invocations from one source node."""

    def __init__(self, cluster, src_node: int, servers: Dict[int, RpcServer]):
        self.cluster = cluster
        self.sim = cluster.sim
        self.cost = cluster.spec.cost
        self.src_node = src_node
        self.servers = servers
        self.qp = cluster.qp(src_node)
        self.invocations = Counter(f"rpcc{src_node}/invocations")
        self.latency = Histogram(f"rpcc{src_node}/latency")

    # -- core API -----------------------------------------------------------
    def invoke(
        self,
        dst_node: int,
        op: str,
        args: Sequence[Any] = (),
        payload_size: Optional[int] = None,
        callbacks: Optional[List[Tuple[str, Sequence[Any]]]] = None,
    ) -> RPCFuture:
        """Fire-and-return: asynchronous invocation of ``op`` on ``dst_node``.

        ``payload_size`` overrides the marshalled-size estimate — containers
        pass the DataBox wire size of the actual entry so that simulated
        transfer cost tracks operation size, without re-encoding values.
        """
        server = self.servers.get(dst_node)
        if server is None:
            raise KeyError(f"no RPC server on node {dst_node}")
        fut = RPCFuture(self.sim, op)
        slot, completion = server.allocate_slot()
        req = RpcRequest(
            op=op,
            args=tuple(args),
            src_node=self.src_node,
            slot=slot,
            callbacks=list(callbacks or []),
        )
        size = payload_size if payload_size is not None else sum(
            estimate_size(a) for a in args
        )
        size += _REQUEST_HEADER_BYTES
        self.invocations.add(1)
        self.sim.process(
            self._protocol(dst_node, server, req, size, completion, fut),
            name=f"rpc-{op}-{self.src_node}->{dst_node}",
        )
        return fut

    def call(
        self,
        dst_node: int,
        op: str,
        args: Sequence[Any] = (),
        payload_size: Optional[int] = None,
        callbacks: Optional[List[Tuple[str, Sequence[Any]]]] = None,
    ):
        """Generator: synchronous invoke — yields until the result arrives."""
        fut = self.invoke(dst_node, op, args, payload_size, callbacks)
        yield fut.wait()
        return fut.result

    def invoke_all(self, targets, op: str, args_of) -> List[RPCFuture]:
        """Asynchronous fan-out: one invocation per target node.

        ``args_of(node)`` builds per-target arguments.  This is the building
        block for HCL's "efficient collectives (broadcast, all gather /
        scatter)".
        """
        return [self.invoke(t, op, args_of(t)) for t in targets]

    # -- the wire protocol ---------------------------------------------------
    def _protocol(self, dst_node, server, req, size, completion, fut):
        try:
            # Client stub bookkeeping (marshalling handled as size charge).
            yield self.sim.timeout(
                self.cost.rpc_client_overhead + self.cost.serialize(size)
            )
            target = self.cluster.node(dst_node)
            if not target.alive:
                from repro.fabric.node import NodeDownError

                # A dead target: the QP times out after the retry budget.
                yield self.sim.timeout(4 * self.cost.link_latency)
                raise NodeDownError(f"node {dst_node} is down")
            # 1-2. RDMA_SEND into the request buffer / NIC work queue.
            yield from self.qp.send(dst_node, req, size)
            # 3-6. server executes; we learn the response size from the CQE.
            response_size = yield completion
            # 7. client pull: RDMA_READ from the response buffer.
            envelope = yield from self.qp.rdma_read(
                dst_node, RpcServer.RESPONSE_REGION, req.slot, response_size
            )
            if envelope is None:
                raise RemoteError(req.op, "response slot empty")
            if not envelope["ok"]:
                raise RemoteError(req.op, envelope["error"])
            self.latency.observe(self.sim.now - fut.issued_at)
            if envelope["callbacks"]:
                fut._complete((envelope["value"], envelope["callbacks"]))
            else:
                fut._complete(envelope["value"])
        except BaseException as err:  # noqa: BLE001 - settle the future
            fut._error(err)
