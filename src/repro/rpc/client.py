"""The client stub (Fig 2, left side).

``invoke()`` marshals the call into a DataBox-sized SEND, fires it at the
target node's request buffer, and returns an :class:`RPCFuture`
immediately — asynchronous by default, per Section III-C4.  A detached
protocol process completes the future:

1. RDMA_SEND of the request (size = marshalled arguments),
2. wait for the server's completion notification (the ``ibv_get_cq_event``
   of the paper),
3. RDMA_READ of the response buffer slot (client-pull),
4. decode the envelope and settle the future.

``call()`` is the synchronous convenience: ``result = yield from
client.call(...)``.

**Reliability contract.**  On a fair-weather fabric (no fault plan
installed, target alive) the protocol above runs verbatim — no timers, no
tokens, bit-identical results to the classic stub.  When the cluster has a
:class:`~repro.fabric.faults.FaultInjector` installed, or the target is
known-dead, the stub switches to Mercury-style hardened delivery governed
by :class:`~repro.config.RetryPolicy` (``cost.retry``):

* every attempt gets a per-QP completion **timeout**;
* failed attempts (wire drop, crash, timeout) are retransmitted with
  **exponential backoff** up to a bounded **retry budget**;
* each hardened request carries an **idempotency token** so a duplicated
  or retransmitted mutation applies exactly once at the server;
* after budget exhaustion the caller sees
  :class:`~repro.rpc.future.TargetUnavailable`.

The hybrid data access model lives one layer up (``repro.core.container``):
a container only builds an RpcClient invocation for *remote* partitions.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.fabric.faults import FabricDropped
from repro.obs.registry import registry_of
from repro.obs.span import tracer_of
from repro.rpc.future import (
    RemoteError,
    RPCFuture,
    ServerOverloaded,
    TargetUnavailable,
)
from repro.rpc.server import RpcRequest, RpcServer
from repro.rpc.window import WindowConfig, WindowSet
from repro.serialization.databox import estimate_size

__all__ = ["RpcClient"]

_REQUEST_HEADER_BYTES = 48  # op name, slot, caller id, framing


class RpcClient:
    """Issues RoR invocations from one source node."""

    __slots__ = (
        "cluster", "sim", "cost", "src_node", "servers", "qp",
        "invocations", "latency", "retries", "timeouts", "exhausted",
        "shed_seen", "fused_hits", "fused_fallbacks", "_token_seq",
        "windows",
    )

    def __init__(self, cluster, src_node: int, servers: Dict[int, RpcServer],
                 window: Optional[WindowConfig] = None):
        self.cluster = cluster
        self.sim = cluster.sim
        self.cost = cluster.spec.cost
        self.src_node = src_node
        self.servers = servers
        self.qp = cluster.qp(src_node)
        metrics = registry_of(self.sim)
        self.invocations = metrics.counter(f"rpcc{src_node}/invocations")
        self.latency = metrics.histogram(f"rpcc{src_node}/latency")
        # -- reliability observability --------------------------------------
        self.retries = metrics.counter(f"rpcc{src_node}/retries")
        self.timeouts = metrics.counter(f"rpcc{src_node}/timeouts")
        self.exhausted = metrics.counter(f"rpcc{src_node}/exhausted")
        self.shed_seen = metrics.counter(f"rpcc{src_node}/shed_seen")
        # -- batch-charge observability (shared, cluster-wide counters) ------
        self.fused_hits = metrics.counter("scheduler/batch_charge_hits")
        self.fused_fallbacks = metrics.counter("scheduler/batch_charge_fallbacks")
        self._token_seq = 0
        #: AIMD congestion windows (None = unbounded issue, classic behavior)
        self.windows = (
            WindowSet(self.sim, src_node, window) if window is not None
            else None
        )

    def next_token(self) -> Tuple[int, int]:
        """A fresh idempotency token (unique per client, stable per run)."""
        self._token_seq += 1
        return (self.src_node, self._token_seq)

    # -- core API -----------------------------------------------------------
    def invoke(
        self,
        dst_node: int,
        op: str,
        args: Sequence[Any] = (),
        payload_size: Optional[int] = None,
        callbacks: Optional[List[Tuple[str, Sequence[Any]]]] = None,
        token: Optional[Tuple[int, int]] = None,
        trace_parent=None,
        fused: bool = False,
        stream: Optional[int] = None,
    ) -> RPCFuture:
        """Fire-and-return: asynchronous invocation of ``op`` on ``dst_node``.

        ``payload_size`` overrides the marshalled-size estimate — containers
        pass the DataBox wire size of the actual entry so that simulated
        transfer cost tracks operation size, without re-encoding values.

        ``token`` pins the idempotency token; callers that may re-issue the
        same logical mutation through a *different* invocation (container
        write replay after a crash) pass the original token so the server
        dedups across both.

        ``trace_parent`` (a :class:`~repro.obs.span.Span`) makes the traced
        invocation a child of an enclosing span (e.g. the coalescer's
        buffer span); ignored when tracing is off.

        ``fused`` requests batch-charged transport: on the fair-weather
        path the SEND and the response RDMA_READ each try the closed-form
        fused charge (:meth:`~repro.fabric.verbs.QueuePair.try_send_fused`)
        and fall back to per-packet simulation whenever the contention
        guard declines.  Containers set it for coalescer flush batches.

        ``stream`` selects the congestion window when the client was built
        with one (containers pass the target partition index, giving the
        per-(node, partition) window); ignored when windows are off.
        """
        if self.windows is not None:
            return self._invoke_windowed(
                dst_node, op, args, payload_size, callbacks, token,
                trace_parent, fused, stream,
            )
        return self._invoke_direct(
            dst_node, op, args, payload_size, callbacks, token,
            trace_parent, fused, stream,
        )

    def _invoke_windowed(self, dst_node, op, args, payload_size, callbacks,
                         token, trace_parent, fused, stream) -> RPCFuture:
        """Route one invocation through its AIMD window.

        The caller's future settles with the final outcome; individual
        attempts are plain direct invocations bridged onto it.  Sheds are
        retried by the window after a capped exponential backoff — a pinned
        idempotency token rides every attempt unchanged, while auto-assigned
        tokens are drawn fresh per attempt (a shed op never executed, so a
        fresh token cannot double-apply; see ``rpc/server.py`` dedup notes).
        """
        outer = RPCFuture(self.sim, op)
        win = self.windows.window(dst_node, stream)
        cfg = win.cfg
        shed_tries = [0]

        def launch(seq):
            inner = self._invoke_direct(
                dst_node, op, args, payload_size, callbacks, token,
                trace_parent, fused, stream,
            )
            issued = self.sim.now

            def settled(f, seq=seq, issued=issued):
                if f._ok:
                    win.completed(seq, self.sim.now - issued)
                    outer._complete(f._value)
                    return
                err = f._value
                if isinstance(err, ServerOverloaded):
                    win.shed(seq)
                    if shed_tries[0] < cfg.max_shed_retries:
                        shed_tries[0] += 1
                        win.retries.add(1)
                        delay = min(
                            cfg.shed_backoff * (2.0 ** (shed_tries[0] - 1)),
                            cfg.shed_backoff_max,
                        )
                        self.sim.schedule_callback(
                            lambda: win.submit(launch), delay
                        )
                        return
                else:
                    win.failed(seq)
                outer._error(err)

            inner._on_settle(settled)

        win.submit(launch)
        return outer

    def _invoke_direct(
        self,
        dst_node: int,
        op: str,
        args: Sequence[Any] = (),
        payload_size: Optional[int] = None,
        callbacks: Optional[List[Tuple[str, Sequence[Any]]]] = None,
        token: Optional[Tuple[int, int]] = None,
        trace_parent=None,
        fused: bool = False,
        stream: Optional[int] = None,
    ) -> RPCFuture:
        """One unwindowed attempt (the classic invoke body)."""
        server = self.servers.get(dst_node)
        if server is None:
            raise KeyError(f"no RPC server on node {dst_node}")
        fut = RPCFuture(self.sim, op)
        slot, completion = server.allocate_slot()
        req = RpcRequest(
            op=op,
            args=tuple(args),
            src_node=self.src_node,
            slot=slot,
            callbacks=list(callbacks or []),
            token=token,
        )
        size = payload_size if payload_size is not None else sum(
            estimate_size(a) for a in args
        )
        size += _REQUEST_HEADER_BYTES
        tracer = tracer_of(self.sim)
        if tracer is not None:
            attrs = {"dst": dst_node, "bytes": size}
            if stream is not None:
                attrs["stream"] = stream
            req.trace = tracer.begin(
                f"rpc.{op}", parent=trace_parent, node=self.src_node,
                attrs=attrs,
            )
        self.invocations.add(1)
        self.sim.process(
            self._protocol(dst_node, server, req, size, completion, fut, fused),
            name=f"rpc-{op}-{self.src_node}->{dst_node}",
        )
        return fut

    def call(
        self,
        dst_node: int,
        op: str,
        args: Sequence[Any] = (),
        payload_size: Optional[int] = None,
        callbacks: Optional[List[Tuple[str, Sequence[Any]]]] = None,
        token: Optional[Tuple[int, int]] = None,
        trace_parent=None,
        fused: bool = False,
        stream: Optional[int] = None,
    ):
        """Generator: synchronous invoke — yields until the result arrives."""
        fut = self.invoke(dst_node, op, args, payload_size, callbacks, token,
                          trace_parent, fused, stream)
        yield fut.wait()
        return fut.result

    def invoke_all(self, targets, op: str, args_of) -> List[RPCFuture]:
        """Asynchronous fan-out: one invocation per target node.

        ``args_of(node)`` builds per-target arguments.  This is the building
        block for HCL's "efficient collectives (broadcast, all gather /
        scatter)".
        """
        return [self.invoke(t, op, args_of(t)) for t in targets]

    # -- the wire protocol ---------------------------------------------------
    def _protocol(self, dst_node, server, req, size, completion, fut,
                  fused=False):
        # Tracing is pure observation: ``mark`` captures ``sim.now`` at each
        # stage boundary and the spans are recorded after the fact, so the
        # yielded event sequence is identical with tracing on or off.
        trace = req.trace
        tracer = tracer_of(self.sim) if trace is not None else None
        node = self.src_node
        mark = fut.issued_at
        try:
            # Client stub bookkeeping (marshalling handled as size charge).
            yield self.sim.timeout(
                self.cost.rpc_client_overhead + self.cost.serialize(size)
            )
            if tracer is not None:
                mark = tracer.record("client.marshal", mark, self.sim.now,
                                     parent=trace, node=node).end
            target = self.cluster.node(dst_node)
            hardened = self.cluster.faults is not None or not target.alive
            if not hardened:
                # Fair-weather fast path: the classic three-step protocol,
                # no timers, no retransmission — bit-identical to the
                # pre-chaos stub.
                # 1-2. RDMA_SEND into the request buffer / NIC work queue.
                fused_send = (
                    self.qp.try_send_fused(dst_node, req, size)
                    if fused else None
                )
                if fused_send is not None:
                    self.fused_hits.add(1)
                    send_done, msg = fused_send
                    yield send_done
                    nic = target.nic
                    if nic.admit(msg):
                        if not nic.recv_queue.try_put(msg):
                            yield nic.recv_queue.put(msg)
                else:
                    if fused:
                        self.fused_fallbacks.add(1)
                    yield from self.qp.send(dst_node, req, size)
                if tracer is not None:
                    # The client resumes before the server worker does, so
                    # ``sent`` lands on the envelope ahead of execution.
                    trace.attrs["sent"] = self.sim.now
                    mark = tracer.record("client.send", mark, self.sim.now,
                                         parent=trace, node=node).end
                # 3-6. server executes; the CQE carries the response size.
                response_size = yield completion
                if tracer is not None:
                    mark = tracer.record("server.wait", mark, self.sim.now,
                                         parent=trace, node=node).end
                # 7. client pull: RDMA_READ from the response buffer.
                fused_read = (
                    self.qp.try_rdma_read_fused(
                        dst_node, RpcServer.RESPONSE_REGION, req.slot,
                        response_size,
                    )
                    if fused else None
                )
                if fused_read is not None:
                    self.fused_hits.add(1)
                    read_done, envelope = fused_read
                    yield read_done
                else:
                    if fused:
                        self.fused_fallbacks.add(1)
                    envelope = yield from self.qp.rdma_read(
                        dst_node, RpcServer.RESPONSE_REGION, req.slot,
                        response_size,
                    )
            else:
                if req.token is None:
                    req.token = self.next_token()
                response_size = yield from self._send_with_retry(
                    dst_node, target, req, size, completion
                )
                if tracer is not None:
                    mark = tracer.record("rpc.deliver", mark, self.sim.now,
                                         parent=trace, node=node).end
                envelope = yield from self._pull_with_retry(
                    dst_node, req, response_size
                )
            if tracer is not None:
                mark = tracer.record("client.pull", mark, self.sim.now,
                                     parent=trace, node=node).end
            if envelope is None:
                raise RemoteError(req.op, "response slot empty")
            if not envelope["ok"]:
                if envelope.get("shed"):
                    # Admission control rejected the op before execution:
                    # retriable, and distinct from a handler failure.
                    self.shed_seen.add(1)
                    raise ServerOverloaded(req.op, dst_node,
                                           envelope["depth"], envelope["bound"])
                raise RemoteError(req.op, envelope["error"])
            self.latency.observe(self.sim.now - fut.issued_at)
            if envelope["callbacks"]:
                fut._complete((envelope["value"], envelope["callbacks"]))
            else:
                fut._complete(envelope["value"])
            if tracer is not None:
                tracer.record("client.settle", mark, self.sim.now,
                              parent=trace, node=node)
                tracer.finish(trace, self.sim.now)
        except BaseException as err:  # noqa: BLE001 - settle the future
            fut._error(err)
            if tracer is not None:
                trace.attrs["error"] = f"{type(err).__name__}: {err}"
                tracer.finish(trace, self.sim.now)

    # -- hardened delivery ----------------------------------------------------
    def _send_with_retry(self, dst_node, target, req, size, completion):
        """Deliver ``req`` and wait for its completion under the retry budget.

        The completion event is shared across attempts: whichever delivered
        copy the server executes first signals it (later copies dedup on the
        idempotency token).  Returns the response size from the CQE.
        """
        policy = self.cost.retry
        attempts = policy.max_retries + 1
        for attempt in range(1, attempts + 1):
            if attempt > 1:
                self.retries.add(1)
                yield self.sim.timeout(policy.backoff(attempt - 1))
            if completion.triggered:
                return completion.value
            sent = False
            if target.alive or self.cluster.faults is not None:
                try:
                    yield from self.qp.send(dst_node, req, size)
                    sent = True
                    if req.trace is not None:
                        req.trace.attrs.setdefault("sent", self.sim.now)
                except FabricDropped:
                    # Transport-level NACK: retransmit after backoff.
                    continue
            else:
                # Known-dead target on a fault-free fabric: nothing to put
                # the request into — burn one timeout slot ("port down"),
                # then retry per the budget in case the node recovers.
                yield self.sim.timeout(policy.timeout)
            if sent:
                if completion.triggered:
                    return completion.value
                timer = self.sim.timeout(policy.timeout)
                index, value = yield self.sim.any_of([completion, timer])
                if index == 0:
                    return value
                self.timeouts.add(1)
        self.exhausted.add(1)
        raise TargetUnavailable(req.op, dst_node, attempts, "request")

    def _pull_with_retry(self, dst_node, req, response_size):
        """RDMA_READ of the response slot, retried on wire drops."""
        policy = self.cost.retry
        attempts = policy.max_retries + 1
        for attempt in range(1, attempts + 1):
            if attempt > 1:
                self.retries.add(1)
                yield self.sim.timeout(policy.backoff(attempt - 1))
            try:
                envelope = yield from self.qp.rdma_read(
                    dst_node, RpcServer.RESPONSE_REGION, req.slot,
                    response_size,
                )
                return envelope
            except FabricDropped:
                continue
        self.exhausted.add(1)
        raise TargetUnavailable(req.op, dst_node, attempts, "response")
