"""AIMD outstanding-op windows for pipelined RPC issue.

Mercury-style extreme-scale RPC stacks hide latency by keeping a *bounded*
number of operations in flight per destination: enough to pipeline the
wire, few enough not to overrun the server's bounded receive queue.  This
module provides that bound as a self-tuning congestion window, TCP-style:

* **Additive increase** — every completion that arrives under the latency
  target (a Vegas-style multiple of the smallest latency this window has
  observed) grows the window by ``additive / cwnd``, i.e. roughly one op
  per window's worth of completions.
* **Multiplicative decrease** — a :class:`~repro.rpc.future.ServerOverloaded`
  shed, a transport failure, or a completion far above the latency target
  halves the window (never below ``floor``).  Decreases are guarded by a
  recovery epoch: at most one halving per in-flight window of launches, so
  a burst of sheds from the same overload event does not collapse the
  window to the floor in one step.
* **Shed retry** — shed operations are re-issued by the window itself after
  a capped exponential backoff, as fresh attempts (a pinned idempotency
  token is preserved; an auto-assigned one is re-drawn per attempt).  After
  ``max_shed_retries`` the shed surfaces to the caller.

Windows are keyed per ``(dst_node, stream)``; containers pass the target
partition index as the stream so each partition's pipeline adapts
independently (the per-(node, partition) window of the paper's aggregation
discussion).  Every window exports an ``rpc/cwnd/...`` gauge, and stalls
(ops queued because the window was full) count into ``rpc/window_stalls``.

All state derives from simulated quantities only — latencies, sheds, and
kernel timestamps — so window trajectories are bit-deterministic for a
given seed regardless of ``PYTHONHASHSEED``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from repro.obs.registry import registry_of

__all__ = ["WindowConfig", "AIMDWindow", "WindowSet"]

#: sentinel latency before any completion has been observed
_INF = float("inf")


@dataclass(frozen=True)
class WindowConfig:
    """Knobs for the per-(node, stream) AIMD congestion window."""

    #: initial window (ops in flight before any adaptation)
    initial: int = 4
    #: hard lower bound — 1 guarantees progress (never deadlocks)
    floor: int = 1
    #: hard upper bound on the window
    cap: int = 256
    #: additive-increase numerator (ops per window of good completions)
    additive: float = 1.0
    #: halve when a completion exceeds ``latency_factor * base_latency``
    latency_factor: float = 4.0
    #: first shed-retry backoff (sim seconds), doubled per retry
    shed_backoff: float = 20e-6
    #: cap on the shed-retry backoff
    shed_backoff_max: float = 320e-6
    #: shed retries absorbed by the window before surfacing to the caller
    max_shed_retries: int = 64

    def __post_init__(self):
        if self.floor < 1:
            raise ValueError(f"window floor must be >= 1, got {self.floor}")
        if self.initial < self.floor or self.cap < self.initial:
            raise ValueError(
                f"need floor <= initial <= cap, got "
                f"{self.floor}/{self.initial}/{self.cap}"
            )


class AIMDWindow:
    """One congestion window: bounded launches + AIMD adaptation."""

    __slots__ = (
        "sim", "cfg", "cwnd", "outstanding", "base_latency",
        "_queue", "_launch_seq", "_recover_until",
        "gauge", "stalls", "sheds", "retries",
    )

    def __init__(self, sim, cfg: WindowConfig, gauge, stalls, sheds, retries):
        self.sim = sim
        self.cfg = cfg
        self.cwnd = float(cfg.initial)
        self.outstanding = 0
        self.base_latency = _INF
        #: deferred launch closures, FIFO
        self._queue: deque = deque()
        self._launch_seq = 0
        self._recover_until = 0
        self.gauge = gauge
        self.stalls = stalls
        self.sheds = sheds
        self.retries = retries
        gauge.set(self.cwnd)

    # -- launch side ---------------------------------------------------------
    def submit(self, launch: Callable[[int], None]) -> None:
        """Run ``launch(seq)`` now if the window has room, else queue it."""
        if self.outstanding < int(self.cwnd):
            self._launch(launch)
        else:
            self.stalls.add(1)
            self._queue.append(launch)

    def _launch(self, launch) -> None:
        self.outstanding += 1
        self._launch_seq += 1
        launch(self._launch_seq)

    def _pump(self) -> None:
        while self._queue and self.outstanding < int(self.cwnd):
            self._launch(self._queue.popleft())

    # -- feedback side -------------------------------------------------------
    def completed(self, seq: int, latency: float) -> None:
        """A launch finished successfully after ``latency`` sim-seconds."""
        self.outstanding -= 1
        if latency < self.base_latency:
            self.base_latency = latency
        if (self.base_latency is _INF
                or latency <= self.cfg.latency_factor * self.base_latency):
            if self.cwnd < self.cfg.cap:
                self.cwnd = min(
                    self.cfg.cap,
                    self.cwnd + self.cfg.additive / max(1.0, self.cwnd),
                )
        else:
            self._decrease(seq)
        self.gauge.set(self.cwnd)
        self._pump()

    def shed(self, seq: int) -> None:
        """The launch was shed by admission control."""
        self.outstanding -= 1
        self.sheds.add(1)
        self._decrease(seq)
        self.gauge.set(self.cwnd)
        self._pump()

    def failed(self, seq: int) -> None:
        """The launch failed for a non-shed reason (timeout, crash, ...)."""
        self.outstanding -= 1
        self._decrease(seq)
        self.gauge.set(self.cwnd)
        self._pump()

    def _decrease(self, seq: int) -> None:
        # Recovery-epoch guard: halve at most once per in-flight window —
        # losses from launches issued before the previous decrease carry no
        # new information about the post-decrease rate.
        if seq <= self._recover_until:
            return
        self._recover_until = self._launch_seq
        self.cwnd = max(float(self.cfg.floor), self.cwnd / 2.0)

    @property
    def queued(self) -> int:
        return len(self._queue)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<AIMDWindow cwnd={self.cwnd:.2f} out={self.outstanding} "
                f"queued={len(self._queue)}>")


class WindowSet:
    """Per-client collection of windows keyed by ``(dst_node, stream)``."""

    __slots__ = ("sim", "cfg", "src_node", "_windows",
                 "stalls", "sheds", "retries", "_metrics")

    def __init__(self, sim, src_node: int, cfg: WindowConfig):
        self.sim = sim
        self.cfg = cfg
        self.src_node = src_node
        self._windows: Dict[Tuple[int, Optional[int]], AIMDWindow] = {}
        metrics = registry_of(sim)
        self._metrics = metrics
        # Cluster-wide adaptive-state counters (shared across clients).
        self.stalls = metrics.counter("rpc/window_stalls")
        self.sheds = metrics.counter("rpc/window_sheds")
        self.retries = metrics.counter("rpc/window_retries")

    def window(self, dst_node: int, stream: Optional[int]) -> AIMDWindow:
        key = (dst_node, stream)
        win = self._windows.get(key)
        if win is None:
            label = "-" if stream is None else str(stream)
            gauge = self._metrics.gauge(
                f"rpc/cwnd/n{self.src_node}-n{dst_node}s{label}"
            )
            win = AIMDWindow(self.sim, self.cfg, gauge,
                             self.stalls, self.sheds, self.retries)
            self._windows[key] = win
        return win

    def snapshot(self) -> Dict[str, float]:
        """Current window sizes, keyed like the gauges."""
        out = {}
        for (dst, stream), win in sorted(
                self._windows.items(),
                key=lambda kv: (kv[0][0], -1 if kv[0][1] is None else kv[0][1])):
            label = "-" if stream is None else str(stream)
            out[f"n{self.src_node}-n{dst}s{label}"] = win.cwnd
        return out
