"""RPC-over-RDMA (RoR) framework — the paper's first contribution.

Reproduces the Fig 2 pipeline:

1. the client stub marshals the call into a DataBox and ``RDMA_SEND``s it
   into the server's request buffer (the NIC receive work queue);
2. NIC-core worker loops (:class:`~repro.rpc.server.RpcServer`) pull
   requests off the work queue, de-marshal, execute the bound function
   against local memory — *without involving the host CPU* — and place the
   result in the response buffer;
3. the client is notified of completion and *pulls* the response with an
   ``RDMA_READ`` (the client-pull paradigm).

Innovations from the paper carried over: request aggregation on the NIC
(batch de-marshalling), callback chaining (several dependent operations in
one invocation), and future-based synchronous/asynchronous execution.
"""

from repro.rpc.future import RPCFuture, RemoteError, ServerOverloaded
from repro.rpc.server import RpcServer, RpcContext
from repro.rpc.client import RpcClient
from repro.rpc.coalesce import OpCoalescer, ReadCache

__all__ = [
    "RPCFuture", "RemoteError", "ServerOverloaded", "RpcServer",
    "RpcContext", "RpcClient", "OpCoalescer", "ReadCache",
]
