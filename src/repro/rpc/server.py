"""The server stub running on the NIC cores (Fig 2, right side).

Users ``bind()`` functions into the invocation registry.  Worker loops —
one per NIC core slot — pull requests off the receive work queue, acquire a
NIC core, de-marshal, execute, and deposit the result in the response
buffer.  The host CPU resource is *never* touched, which is the RoR design
point: data-structure ops are "lightweight" enough for NIC cores.

Request aggregation (Section III-B): a worker that pops a request also
drains up to ``batch_size - 1`` additional queued requests and processes
them under a single dispatch charge, amortizing de-marshal overhead; this is
the "opportunity to aggregate multiple instructions before execution".

Handlers can be plain callables or generators; generators may yield
simulation events (e.g. ``ctx.charge_local(...)``) to model their local
memory cost, and receive an :class:`RpcContext` first argument.
"""

from __future__ import annotations

import inspect
from collections import OrderedDict
from typing import Any, Callable, Dict, Optional

from repro.fabric.node import Node
from repro.obs.registry import registry_of
from repro.obs.span import tracer_of
from repro.serialization.databox import estimate_size

__all__ = ["RpcServer", "RpcContext", "RpcRequest"]

#: sentinel parked in the dedup table while a tokened request executes, so
#: a duplicate arriving mid-execution is suppressed instead of re-run
_IN_FLIGHT = object()

#: bound on remembered idempotency tokens (oldest evicted first)
_DEDUP_CAPACITY = 8192


class RpcRequest:
    """In-flight request, carried as SEND payload through the fabric."""

    __slots__ = ("op", "args", "src_node", "slot", "response_size_hint",
                 "callbacks", "token", "trace", "arrived_at")

    def __init__(self, op, args, src_node, slot, response_size_hint=0,
                 callbacks=None, token=None, trace=None):
        self.op = op
        self.args = args
        self.src_node = src_node
        self.slot = slot
        self.response_size_hint = response_size_hint
        self.callbacks = callbacks or []
        #: idempotency token ``(src_node, seq)`` — set only on hardened
        #: (retry-capable) invocations; ``None`` on the fair-weather path
        self.token = token
        #: root :class:`~repro.obs.span.Span` of the traced invocation, or
        #: ``None`` when tracing is off — this is how the op id rides the
        #: envelope so the server can hang its stage spans off the client's
        self.trace = trace
        #: sim time this request entered the target's receive queue (stamped
        #: by the server's admission hook); feeds the queue-wait histogram
        self.arrived_at: Optional[float] = None


class RpcContext:
    """Execution context handed to handlers (the 'caller identifier' plus
    the target memory environment of Section III)."""

    __slots__ = ("server", "node", "sim", "cost", "src_node", "op")

    def __init__(self, server: "RpcServer", src_node: int, op: str):
        self.server = server
        self.node = server.node
        self.sim = server.node.sim
        self.cost = server.node.cost
        self.src_node = src_node
        self.op = op

    # -- cost-charging helpers for generator handlers ------------------------
    def charge_local(self, ops: int = 1):
        """Event: ``ops`` local memory operations (the L of Table I)."""
        return self.sim.timeout(ops * self.cost.local_op)

    def charge_read(self, nbytes: int):
        """Generator: one local read of ``nbytes`` (the R of Table I)."""
        yield from self.node.local_read(nbytes)

    def charge_write(self, nbytes: int):
        """Generator: one local write of ``nbytes`` (the W of Table I)."""
        yield from self.node.local_copy(nbytes)

    def charge_cas(self, count: int = 1):
        """Event: ``count`` *local* CAS ops (cheap — the whole point)."""
        return self.sim.timeout(count * self.cost.cas_local)


class RpcServer:
    """Per-node RoR server: registry + NIC-core worker loops + response buffer."""

    RESPONSE_REGION = "__rpc_responses__"
    RESPONSE_SLOTS = 1 << 16

    #: CQE size signalled for a shed (rejected) request's envelope
    SHED_COMPLETION_BYTES = 128

    def __init__(self, node: Node, batch_size: int = 1, workers: Optional[int] = None,
                 queue_bound: Optional[int] = None):
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if queue_bound is not None and queue_bound < 1:
            raise ValueError("queue_bound must be >= 1 (or None for unbounded)")
        self.node = node
        self.sim = node.sim
        self.cost = node.cost
        self.batch_size = batch_size
        self.registry: Dict[str, Callable] = {}
        self.response_region = node.register_region(
            self.RESPONSE_REGION, self.RESPONSE_SLOTS
        )
        self._completions: Dict[int, Any] = {}  # slot -> completion Event
        self._next_slot = 0
        metrics = registry_of(self.sim)
        self.requests_served = metrics.counter(f"rpc{node.node_id}/served")
        self.batches = metrics.counter(f"rpc{node.node_id}/batches")
        self.exec_time = metrics.histogram(f"rpc{node.node_id}/exec")
        self.duplicates_suppressed = metrics.counter(
            f"rpc{node.node_id}/dups_suppressed")
        #: token -> _IN_FLIGHT | (envelope, completion_size); insertion-ordered
        #: so eviction drops the oldest settled tokens first
        self._dedup: "OrderedDict[Any, Any]" = OrderedDict()
        # -- admission control (backpressure knob) ---------------------------
        #: max requests waiting in the NIC receive queue; ``None`` = unbounded
        self.queue_bound = queue_bound
        self.shed = metrics.counter(f"rpc{node.node_id}/shed")
        #: cluster-wide rollup all servers of one sim share
        self.shed_total = metrics.counter("serving/shed")
        #: time from receive-queue arrival to execution start — the
        #: congestion signal the client-side AIMD windows react to
        self.queue_wait = metrics.histogram(f"rpc{node.node_id}/queue_wait")
        # The admission hook is always installed: it stamps arrival times
        # for the queue-wait histogram, and additionally sheds at the
        # receive-queue bound when one is configured.
        node.nic.admission = self._admit
        self._stopped = False
        n_workers = workers if workers is not None else 2 * self.cost.nic_cores
        for i in range(n_workers):
            self.sim.process(self._worker_loop(), name=f"rpc-worker-{node.node_id}-{i}")

    # -- registry ---------------------------------------------------------------
    def bind(self, name: str, fn: Callable) -> None:
        """Map ``name`` to ``fn`` in the RPC invocation registry."""
        if name in self.registry:
            raise KeyError(f"RPC op {name!r} already bound on node {self.node.node_id}")
        self.registry[name] = fn

    def rebind(self, name: str, fn: Callable) -> None:
        self.registry[name] = fn

    # -- slots / completions ------------------------------------------------------
    def allocate_slot(self):
        """Reserve a response slot; returns ``(slot, completion_event)``."""
        slot = self._next_slot
        self._next_slot = (self._next_slot + 1) % self.RESPONSE_SLOTS
        from repro.simnet.core import Event

        ev = Event(self.sim)
        self._completions[slot] = ev
        return slot, ev

    def stop(self) -> None:
        self._stopped = True

    # -- admission control ------------------------------------------------------
    def _admit(self, msg) -> bool:
        """Arrival stamping + bounded-receive-queue load shedding.

        Installed as ``nic.admission`` on every server.  Admitted RoR
        requests get their receive-queue arrival time stamped (the
        queue-wait histogram's start mark).  With ``queue_bound`` set,
        admit while fewer than ``queue_bound`` requests wait; once the queue
        is exactly full, shed: deposit a retriable ``shed`` envelope in the
        request's response slot and signal its completion immediately —
        without executing the handler, so a shed op has no side effects.
        The dedup table is deliberately untouched: a retry carrying the
        same idempotency token is a fresh request, not a replay, and
        executes normally once the queue has room.
        """
        req = msg.payload
        if not isinstance(req, RpcRequest):
            return True  # only RoR requests are governed by the bound
        if (self.queue_bound is None
                or len(self.node.nic.recv_queue) < self.queue_bound):
            req.arrived_at = self.sim.now
            return True
        completion = self._completions.pop(req.slot, None)
        if completion is None:
            # A duplicated delivery of an already-settled invocation (fault
            # plans may clone packets): nothing to answer, just drop it.
            return False
        self.shed.add(1)
        self.shed_total.add(1)
        self.response_region.put_object(req.slot, {
            "ok": False,
            "error": "server overloaded",
            "value": None,
            "callbacks": [],
            "shed": True,
            "depth": len(self.node.nic.recv_queue),
            "bound": self.queue_bound,
        })
        completion.succeed(self.SHED_COMPLETION_BYTES)
        return False

    # -- the NIC-core worker ---------------------------------------------------------
    def _worker_loop(self):
        nic = self.node.nic
        recv = nic.recv_queue
        cores = nic.cores
        sim = self.sim
        dispatch = self.cost.nic_rpc_dispatch
        while not self._stopped:
            msg = yield recv.get()
            # Drain the whole request queue per wake-up: after each batch,
            # pull the next queued request directly off the work queue
            # instead of re-arming a ``get`` Event on it.  A pooled
            # zero-delay timeout stands in for the triggered get — it
            # schedules with the identical ``(time, priority, seq)``, so
            # worker/verb interleaving under contention (and every simulated
            # result) is unchanged; only the per-request Event allocation
            # and Store bookkeeping go away.
            while True:
                batch = [msg]
                # Request aggregation: opportunistically drain more requests.
                while len(batch) < self.batch_size:
                    ok, extra = recv.try_get()
                    if not ok:
                        break
                    batch.append(extra)
                core = cores.request()
                yield core
                try:
                    # One de-marshal/dispatch charge per batch (aggregation win).
                    yield sim.timeout(dispatch)
                    self.batches.add(1)
                    for m in batch:
                        yield from self._execute(m.payload)
                finally:
                    cores.release(core)
                ok, msg = recv.try_get()
                if not ok:
                    break
                yield sim.timeout(0.0)

    def _execute(self, req: RpcRequest):
        t0 = self.sim.now
        if req.arrived_at is not None:
            self.queue_wait.observe(t0 - req.arrived_at)
            req.arrived_at = None  # duplicates re-stamp on their own arrival
        if req.token is not None:
            cached = self._dedup.get(req.token)
            if cached is _IN_FLIGHT:
                # Duplicate while the original executes: the original will
                # deposit the envelope and signal the (shared) completion.
                self.duplicates_suppressed.add(1)
                return
            if cached is not None:
                # Retransmit after execution: re-deposit the recorded
                # envelope and re-signal, without re-running the handler —
                # this is what makes retried mutations exactly-once.
                envelope, completion_size = cached
                self.response_region.put_object(req.slot, envelope)
                self.duplicates_suppressed.add(1)
                completion = self._completions.pop(req.slot, None)
                if completion is not None:
                    completion.succeed(completion_size)
                return
            self._dedup[req.token] = _IN_FLIGHT
        fn = self.registry.get(req.op)
        ctx = RpcContext(self, req.src_node, req.op)
        result: Any
        failed: Optional[str] = None
        if fn is None:
            failed = f"no such op {req.op!r} on node {self.node.node_id}"
            result = None
        else:
            try:
                result = fn(ctx, *req.args)
                if inspect.isgenerator(result):
                    result = yield from result
            except Exception as err:  # noqa: BLE001 - shipped to caller
                failed = f"{type(err).__name__}: {err}"
                result = None
        # Callback chaining: run follow-on ops server-side, in order.
        cb_results = []
        if failed is None:
            for cb_op, cb_args in req.callbacks:
                cb_fn = self.registry.get(cb_op)
                if cb_fn is None:
                    failed = f"no such callback op {cb_op!r}"
                    break
                try:
                    cb_res = cb_fn(ctx, *cb_args)
                    if inspect.isgenerator(cb_res):
                        cb_res = yield from cb_res
                    cb_results.append(cb_res)
                except Exception as err:  # noqa: BLE001
                    failed = f"callback {cb_op}: {type(err).__name__}: {err}"
                    break
        envelope = {
            "ok": failed is None,
            "error": failed,
            "value": result,
            "callbacks": cb_results,
        }
        # Deposit the response where the client's RDMA_READ will find it.
        self.response_region.put_object(req.slot, envelope)
        self.requests_served.add(1)
        self.exec_time.observe(self.sim.now - t0)
        if req.trace is not None:
            tracer = tracer_of(self.sim)
            if tracer is not None:
                node_id = self.node.node_id
                sent = req.trace.attrs.get("sent", t0)
                tracer.record("server.queue", sent, t0,
                              parent=req.trace, node=node_id)
                tracer.record("server.execute", t0, self.sim.now,
                              parent=req.trace, node=node_id)
        completion_size = max(
            64, estimate_size(result) + 32 if failed is None else 128
        )
        if req.token is not None:
            self._dedup[req.token] = (envelope, completion_size)
            while len(self._dedup) > _DEDUP_CAPACITY:
                self._dedup.popitem(last=False)
        completion = self._completions.pop(req.slot, None)
        if completion is not None:
            completion.succeed(completion_size)
