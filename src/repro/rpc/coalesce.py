"""Destination-coalescing op buffers and the locality-aware read cache.

This is the client-side aggregation subsystem of Section III-C3 made
transparent: instead of shipping one RoR invocation per container
operation, buffered operations are write-combined into per-(caller-node,
target-partition) buffers and flushed through the container's ``batch``
multi-op handler — one marshal/SEND/invocation charge per flush instead of
per op (the Table I amortization, and the destination-buffered aggregated
insert of Brock et al., BCL [11] / "RDMA vs. RPC" [1910.02158]).

Two pieces live here:

:class:`OpCoalescer`
    Per-container write combiner.  ``append`` adds a sub-operation to the
    destination buffer and fires an asynchronous flush when the op-count or
    byte threshold is crossed; ``drain`` is the mandatory-flush sync point
    (barriers, synchronous reads, explicit ``container.flush``, container
    destruction) — it flushes every pending buffer for the caller's node
    and waits for all in-flight flush batches to complete.  Only *remote*
    partitions buffer: the hybrid access model (Section III-C5) already
    makes same-node operations a shared-memory access, so coalescing them
    would only add latency.

:class:`ReadCache`
    Per-caller-node cache of keyed read results for read-mostly data (BFS
    adjacency lists, contig-traversal neighbor lookups).  Safety is
    epoch-based: every partition carries a ``write_epoch`` bumped by each
    mutation, a cached entry remembers the epoch of the state it read, and
    a hit is served **only while the partition epoch still equals the
    entry's epoch** — so a cached read can never observe a stale value.
    Invalidation is two-tier: writes issued or buffered by the local node
    invalidate the key immediately (write-through on the local buffer),
    and epochs observed on RPC responses (piggybacked at completion time)
    prune entries other nodes' writes made stale.

Both are observable: flush counts, ops-per-flush, flushed bytes, cache
hit/miss/invalidation counters all feed the Fig-4-style profiling report
(``repro.cli aggbench`` / ``BENCH_agg.json``).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.obs.registry import registry_of
from repro.obs.span import tracer_of
from repro.rpc.future import RPCFuture

__all__ = ["OpCoalescer", "ReadCache", "MISS"]

#: default byte threshold per destination buffer (one flush's payload)
DEFAULT_MAX_BYTES = 32 * 1024

# -- auto-tune constants (``aggregation="auto"``) ----------------------------
#: starting flush threshold before any efficiency feedback
AUTO_INITIAL = 8
#: lower bound the threshold can shrink to under sparse traffic
AUTO_FLOOR = 4
#: hard ceiling regardless of what the cost model would allow
AUTO_HARD_CAP = 4096
#: re-evaluate the threshold every this many flushes
AUTO_ADJUST_EVERY = 8
#: stop growing once the amortized fixed flush overhead (client stub +
#: marshal base + server dispatch, the per-invocation terms of Table I)
#: drops below this fraction of the per-op wire/serialize time
AUTO_OVERHEAD_FRACTION = 0.05


class _Buffer:
    """Pending sub-operations bound for one (caller-node, partition) pair."""

    __slots__ = ("rank", "part", "subops", "payload_bytes", "opened_at",
                 "futures")

    def __init__(self, rank: int, part, opened_at: float = 0.0):
        self.rank = rank
        self.part = part
        self.subops: List[Tuple[str, tuple]] = []
        self.payload_bytes = 0
        #: sim time the first sub-op landed — start of the buffer span
        self.opened_at = opened_at
        #: per-op result futures (pipelined async API); ``None`` until the
        #: first ``append_async`` so the classic path pays nothing for it
        self.futures: Optional[List] = None


class OpCoalescer:
    """Write-combines container ops into per-destination batch flushes."""

    __slots__ = (
        "container", "sim", "max_ops", "max_bytes", "_buffers", "_inflight",
        "flushes", "flushed_ops", "flushed_bytes", "threshold_flushes",
        "sync_flushes", "auto", "_fixed_overhead", "_wire_cost",
        "_auto_flushes", "_auto_trips", "_auto_ops", "_auto_bytes",
        "auto_gauge", "_auto_gauge_shared", "_labels",
    )

    def __init__(self, container, max_ops: int,
                 max_bytes: int = DEFAULT_MAX_BYTES, auto: bool = False):
        if max_ops < 1:
            raise ValueError(f"aggregation buffer needs max_ops >= 1, got {max_ops}")
        self.container = container
        self.sim = container.runtime.sim
        self.max_ops = int(max_ops)
        self.max_bytes = int(max_bytes)
        #: (node_id, part_index) -> pending buffer
        self._buffers: Dict[Tuple[int, int], _Buffer] = {}
        #: (node_id, part_index) -> in-flight flush futures
        self._inflight: Dict[Tuple[int, int], List] = {}
        #: op -> "container.op" future label (hot-path f-string memo)
        self._labels: Dict[str, str] = {}
        name = container.name
        metrics = registry_of(self.sim)
        self.flushes = metrics.counter(f"{name}/agg_flushes")
        self.flushed_ops = metrics.counter(f"{name}/agg_ops")
        self.flushed_bytes = metrics.counter(f"{name}/agg_bytes")
        self.threshold_flushes = metrics.counter(f"{name}/agg_threshold_flushes")
        self.sync_flushes = metrics.counter(f"{name}/agg_sync_flushes")
        # -- self-tuning threshold (aggregation="auto") ----------------------
        #: adapt ``max_ops`` from observed flush efficiency instead of
        #: honoring a hand-tuned static value
        self.auto = bool(auto)
        cost = container.runtime.cluster.spec.cost
        #: per-flush fixed overhead a bigger batch amortizes (Table I)
        self._fixed_overhead = (cost.rpc_client_overhead + cost.serialize_base
                                + cost.nic_rpc_dispatch)
        #: closure: bytes -> unavoidable per-op time (wire + marshal slope)
        self._wire_cost = (
            lambda b: b / cost.link_bandwidth + b * cost.serialize_per_byte
        )
        self._auto_flushes = 0   # flushes since the last adjustment
        self._auto_trips = 0     # of which hit a threshold (vs sync drains)
        self._auto_ops = 0
        self._auto_bytes = 0
        self.auto_gauge = None
        self._auto_gauge_shared = None
        if self.auto:
            self.auto_gauge = metrics.gauge(f"{name}/auto_threshold")
            #: cluster-wide alias surfaced in --metrics-out snapshots
            self._auto_gauge_shared = metrics.gauge("coalesce/auto_threshold")
            self.auto_gauge.set(self.max_ops)
            self._auto_gauge_shared.set(self.max_ops)

    # -- write combining ------------------------------------------------------
    def append(self, rank: int, node_id: int, part, op: str, args: tuple,
               payload_bytes: int) -> None:
        """Buffer one sub-op; flush asynchronously when a threshold trips."""
        key = (node_id, part.index)
        buf = self._buffers.get(key)
        if buf is None:
            buf = self._buffers[key] = _Buffer(rank, part, self.sim.now)
        buf.rank = rank  # flush on behalf of the most recent caller
        buf.subops.append((op, args))
        if buf.futures is not None:
            buf.futures.append(None)
        buf.payload_bytes += payload_bytes
        if (len(buf.subops) >= self.max_ops
                or buf.payload_bytes >= self.max_bytes):
            self.threshold_flushes.add(1)
            self._flush_key(key)

    def append_async(self, rank: int, node_id: int, part, op: str,
                     args: tuple, payload_bytes: int):
        """Buffer one sub-op and return a future for *its* result.

        The pipelined-API sibling of :meth:`append`: the op rides the next
        flush batch exactly as a plain buffered op does, but the caller gets
        a per-op :class:`RPCFuture` settled from its slot of the batch
        result (a failed flush fails every rider).  Chain it, AllOf it, or
        let a later ``flush``/``drain`` sync point absorb it.
        """
        key = (node_id, part.index)
        buffers = self._buffers
        buf = buffers.get(key)
        if buf is None:
            buf = buffers[key] = _Buffer(rank, part, self.sim.now)
        buf.rank = rank
        futures = buf.futures
        if futures is None:
            futures = buf.futures = [None] * len(buf.subops)
        label = self._labels.get(op)
        if label is None:
            label = self._labels[op] = f"{self.container.name}.{op}"
        fut = RPCFuture(self.sim, label)
        subops = buf.subops
        subops.append((op, args))
        futures.append(fut)
        total = buf.payload_bytes + payload_bytes
        buf.payload_bytes = total
        if len(subops) >= self.max_ops or total >= self.max_bytes:
            self.threshold_flushes.add(1)
            self._flush_key(key)
        return fut

    def fold(self, rank: int, node_id: int, part, op: str, args: tuple,
             payload_bytes: int):
        """Fold an asynchronous op into a non-empty pending buffer.

        Returns a future for *this op's* result (the tail slot of the flush
        batch), or None when there is nothing pending — the caller then
        issues a plain single-op invocation.  Folding keeps program order:
        the async op lands after every op buffered before it, under the
        same single invocation charge.
        """
        key = (node_id, part.index)
        buf = self._buffers.get(key)
        if buf is None or not buf.subops:
            return None
        buf.rank = rank
        buf.subops.append((op, args))
        if buf.futures is not None:
            buf.futures.append(None)
        buf.payload_bytes += payload_bytes
        fut = self._flush_key(key)
        # Chain through the flush future's kernel event (not then(), which
        # now runs at settle time inside the producer step): the tail-slot
        # extraction keeps running at the settle event's pop, preserving
        # same-timestamp ordering for the aggregated benches.
        nxt = RPCFuture(self.sim, f"{fut.op}+tail")

        def _tail(event, nxt=nxt):
            if event.ok:
                nxt._complete(event.value[-1])
            else:
                nxt._error(event.value)

        fut._event.add_callback(_tail)
        return nxt

    def _flush_key(self, key: Tuple[int, int]):
        """Ship one buffer as a single ``batch`` invocation (asynchronous)."""
        buf = self._buffers.pop(key)
        self.flushes.add(1)
        self.flushed_ops.add(len(buf.subops))
        self.flushed_bytes.add(buf.payload_bytes)
        if self.auto:
            self._auto_flushes += 1
            if (len(buf.subops) >= self.max_ops
                    or buf.payload_bytes >= self.max_bytes):
                self._auto_trips += 1
            self._auto_ops += len(buf.subops)
            self._auto_bytes += buf.payload_bytes
            if self._auto_flushes >= AUTO_ADJUST_EVERY:
                self._auto_adjust()
        trace_parent = None
        tracer = tracer_of(self.sim)
        if tracer is not None:
            # The buffer span covers first-append -> flush; the batch RPC
            # it triggers becomes its child.
            trace_parent = tracer.record(
                "coalesce.buffer", buf.opened_at, self.sim.now, node=key[0],
                attrs={"ops": len(buf.subops), "bytes": buf.payload_bytes},
            )
        fut = self.container._spawn_batch(
            buf.rank, buf.part, buf.subops, buf.payload_bytes,
            trace_parent=trace_parent,
        )
        op_futs = buf.futures
        if op_futs is not None and any(f is not None for f in op_futs):

            def _distribute(bf, futs=op_futs):
                # Settle each rider from its slot of the batch result — at
                # the batch's settle instant, before the kernel pops the
                # flush future's own event.
                if bf._ok:
                    results = bf._value
                    for i, f in enumerate(futs):
                        if f is not None:
                            f._complete(results[i])
                else:
                    for f in futs:
                        if f is not None:
                            f._error(bf._value)

            fut._on_settle(_distribute)
        inflight = self._inflight.setdefault(key, [])
        inflight.append(fut)

        def _settled(event, key=key, fut=fut):
            # Successful flushes retire themselves; failed ones stay listed
            # so the next drain() surfaces the error to a caller.
            if event.ok:
                lst = self._inflight.get(key)
                if lst is not None and fut in lst:
                    lst.remove(fut)

        fut._event.add_callback(_settled)
        return fut

    # -- self-tuning threshold -------------------------------------------------
    def _auto_adjust(self) -> None:
        """Re-derive ``max_ops`` from the last window of flush efficiency.

        Dense traffic (threshold-tripped flushes running at capacity) doubles
        the threshold so more ops amortize each SEND — until the Table-I
        model says the fixed per-flush overhead is already below
        ``AUTO_OVERHEAD_FRACTION`` of the payload's own wire/marshal time,
        at which point bigger batches only add latency.  Sparse traffic
        (drain-dominated flushes far below capacity) halves it back toward
        ``AUTO_FLOOR`` so ops stop waiting for company that never comes.
        """
        flushes = self._auto_flushes
        trips_frac = self._auto_trips / flushes
        mean_ops = self._auto_ops / flushes
        mean_op_bytes = (self._auto_bytes / self._auto_ops
                        if self._auto_ops else 0.0)
        self._auto_flushes = 0
        self._auto_trips = 0
        self._auto_ops = 0
        self._auto_bytes = 0
        new = self.max_ops
        if trips_frac >= 0.5 and mean_ops >= 0.5 * self.max_ops:
            # Batches are filling: grow while the fixed overhead still
            # dominates the per-op cost at the current threshold.
            per_op_floor = self._wire_cost(mean_op_bytes)
            if per_op_floor > 0:
                model_cap = self._fixed_overhead / (
                    AUTO_OVERHEAD_FRACTION * per_op_floor
                )
            else:
                model_cap = AUTO_HARD_CAP
            cap = min(AUTO_HARD_CAP, model_cap)
            if self.max_ops < cap:
                # Saturated windows (every flush threshold-tripped) grow
                # 4x so a dense storm converges in a few windows; mixed
                # windows step 2x.
                factor = 4 if trips_frac >= 0.9 else 2
                new = min(int(cap), self.max_ops * factor)
        elif trips_frac <= 0.25 and mean_ops <= max(2.0, self.max_ops / 4.0):
            new = max(AUTO_FLOOR, self.max_ops // 2)
        if new != self.max_ops:
            self.max_ops = new
            self.auto_gauge.set(new)
            self._auto_gauge_shared.set(new)

    # -- sync points ----------------------------------------------------------
    def pending_for(self, node_id: int, part_index: Optional[int] = None) -> int:
        """Buffered (not yet shipped) op count for a caller node."""
        return sum(
            len(buf.subops)
            for (nid, pidx), buf in self._buffers.items()
            if nid == node_id and (part_index is None or pidx == part_index)
        )

    def pending_total(self) -> int:
        return sum(len(buf.subops) for buf in self._buffers.values())

    def inflight_for(self, node_id: int, part_index: Optional[int] = None) -> int:
        """Flushes shipped by a caller node but not yet completed."""
        return sum(
            len(futs)
            for (nid, pidx), futs in self._inflight.items()
            if nid == node_id and (part_index is None or pidx == part_index)
        )

    def drain(self, rank: int, part_index: Optional[int] = None):
        """Generator: mandatory flush for the caller's node.

        Ships every pending buffer (optionally only the one bound for
        ``part_index``) and waits until all matching in-flight flushes have
        completed, re-raising the first flush failure.  After ``yield from
        coalescer.drain(rank)`` returns, every previously buffered op from
        this node is durably applied at its target partition.
        """
        node_id = self.container.runtime.cluster.node_of_rank(rank)
        keys = [
            k for k in list(self._buffers)
            if k[0] == node_id and (part_index is None or k[1] == part_index)
        ]
        for key in keys:
            buf = self._buffers.get(key)
            if buf is not None and buf.subops:
                self.sync_flushes.add(1)
                self._flush_key(key)
        waiting = [
            fut
            for (nid, pidx), futs in list(self._inflight.items())
            if nid == node_id and (part_index is None or pidx == part_index)
            for fut in list(futs)
        ]
        for fut in waiting:
            if not fut.done:
                yield fut.wait()
            # Retire before surfacing so a failed flush raises exactly once.
            for futs in self._inflight.values():
                if fut in futs:
                    futs.remove(fut)
            _ = fut.result  # re-raises a failed flush at the sync point

    # -- observability --------------------------------------------------------
    def report(self) -> Dict[str, float]:
        flushes = self.flushes.value
        ops = self.flushed_ops.value
        out = {
            "flushes": int(flushes),
            "flushed_ops": int(ops),
            "flushed_bytes": int(self.flushed_bytes.value),
            "threshold_flushes": int(self.threshold_flushes.value),
            "sync_flushes": int(self.sync_flushes.value),
            "ops_per_flush": (ops / flushes) if flushes else 0.0,
            "pending_ops": self.pending_total(),
        }
        if self.auto:
            out["auto"] = True
            out["auto_threshold"] = self.max_ops
        return out


class _Miss:
    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover
        return "<cache miss>"


#: sentinel distinguishing "not cached" from a cached None result
MISS = _Miss()


class ReadCache:
    """Epoch-validated per-caller-node cache for keyed read results."""

    __slots__ = ("_entries", "_observed", "hits", "misses",
                 "invalidations", "stale_drops")

    def __init__(self, sim, name: str):
        #: (node_id, part_index) -> {key: (result, epoch)}
        self._entries: Dict[Tuple[int, int], Dict[Any, Tuple[Any, int]]] = {}
        #: (node_id, part_index) -> newest epoch seen on an RPC response
        self._observed: Dict[Tuple[int, int], int] = {}
        metrics = registry_of(sim)
        self.hits = metrics.counter(f"{name}/cache_hits")
        self.misses = metrics.counter(f"{name}/cache_misses")
        self.invalidations = metrics.counter(f"{name}/cache_invalidations")
        self.stale_drops = metrics.counter(f"{name}/cache_stale_drops")

    def lookup(self, node_id: int, part, key):
        """Return the cached read result, or :data:`MISS`.

        A hit requires the partition's current ``write_epoch`` to equal the
        epoch the entry was read at — entries outlived by any mutation are
        dropped, never served.
        """
        bucket = self._entries.get((node_id, part.index))
        if bucket is None:
            self.misses.add(1)
            return MISS
        entry = bucket.get(key)
        if entry is None:
            self.misses.add(1)
            return MISS
        result, epoch = entry
        if epoch != part.write_epoch:
            del bucket[key]
            self.stale_drops.add(1)
            self.misses.add(1)
            return MISS
        self.hits.add(1)
        return result

    def fill(self, node_id: int, part, key, result, epoch_before: int) -> None:
        """Cache a completed read, unless a write raced the read window."""
        if part.write_epoch != epoch_before:
            return  # value may predate the racing mutation; don't cache
        self._entries.setdefault((node_id, part.index), {})[key] = (
            result, epoch_before
        )

    def invalidate_key(self, node_id: int, part_index: int, key) -> None:
        """Write-through invalidation for a locally issued/buffered write."""
        bucket = self._entries.get((node_id, part_index))
        if bucket is not None and bucket.pop(key, None) is not None:
            self.invalidations.add(1)

    def observe(self, node_id: int, part_index: int, epoch: int) -> None:
        """Fold an epoch piggybacked on an RPC response into the cache.

        Epochs only grow, so pruning everything older than the observed
        epoch is safe; the authoritative equality check in :meth:`lookup`
        remains the correctness gate.
        """
        key = (node_id, part_index)
        last = self._observed.get(key, -1)
        if epoch <= last:
            return
        self._observed[key] = epoch
        bucket = self._entries.get(key)
        if bucket:
            stale = [k for k, (_res, e) in bucket.items() if e < epoch]
            for k in stale:
                del bucket[k]
            if stale:
                self.invalidations.add(len(stale))

    def clear(self) -> None:
        """Drop everything — used when partition membership changes."""
        self._entries.clear()
        self._observed.clear()

    def entries(self) -> int:
        return sum(len(b) for b in self._entries.values())

    def report(self) -> Dict[str, float]:
        hits = self.hits.value
        misses = self.misses.value
        total = hits + misses
        return {
            "hits": int(hits),
            "misses": int(misses),
            "hit_rate": (hits / total) if total else 0.0,
            "invalidations": int(self.invalidations.value),
            "stale_drops": int(self.stale_drops.value),
            "entries": self.entries(),
        }
