"""Reproduction of *HCL: Distributing Parallel Data Structures in Extreme
Scales* (Devarajan, Kougkas, Bateman, Sun - IEEE CLUSTER 2020).

Packages:

* :mod:`repro.simnet`  - discrete-event simulation kernel
* :mod:`repro.fabric`  - verbs-level RDMA cluster fabric (the testbed substitute)
* :mod:`repro.memory`  - allocators, segments, global address space, mmap persistence
* :mod:`repro.serialization` - the DataBox abstraction and codec backends
* :mod:`repro.rpc`     - the RPC-over-RDMA framework (contribution 1)
* :mod:`repro.structures` - lock-free-style local structures (cuckoo, RB-tree,
  optimistic FIFO, MDList)
* :mod:`repro.core`    - HCL distributed containers (contribution 2) with the
  hybrid data access model (contribution 3)
* :mod:`repro.bcl`     - the BCL client-side baseline
* :mod:`repro.apps`    - ISx and Meraculous kernels
* :mod:`repro.harness` - workload generators, sweeps, paper-style reports

Quickstart::

    from repro.config import ares_like
    from repro.core import HCL

    hcl = HCL(ares_like(nodes=4, procs_per_node=8))
    kv = hcl.unordered_map("kv")

    def body(rank):
        yield from kv.insert(rank, f"key-{rank}", rank)
        value, found = yield from kv.find(rank, f"key-{rank}")
        assert found and value == rank

    hcl.run_ranks(body)
    print(f"simulated time: {hcl.now * 1e6:.1f} us")
"""

from repro.config import ClusterSpec, CostModel, ares_like

__version__ = "1.0.0"

__all__ = ["ClusterSpec", "CostModel", "ares_like", "__version__"]
