"""Meraculous k-mer counting on both backends (Section IV-D2).

"k-mer counting uses an unordered map to compute a histogram describing the
number of occurrences of each k-mer across reads of a DNA sequence."

* **HCL** — one ``upsert`` invocation per k-mer: the increment executes at
  the target partition (procedural programming), one round trip.
* **BCL** — the client-side equivalent: a find (read the current count)
  followed by an insert (CAS + write + CAS), i.e. two full client-driven
  protocols per k-mer.  This is exactly the access-pattern gap behind the
  paper's 2.17x-8x result.

Reads are divided among ranks block-wise; the result is verified against an
exact sequential histogram.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Optional, Union

from repro.apps.genome import GenomeData, exact_kmer_counts
from repro.bcl import BCL
from repro.config import ClusterSpec
from repro.core import HCL

__all__ = ["KmerResult", "run_kmer_counting"]


@dataclass
class KmerResult:
    backend: str
    nodes: int
    total_kmers: int
    distinct_kmers: int
    time_seconds: float
    verified: bool
    filtered_kmers: int = 0  # dropped by the min_count noise filter
    agg_report: Optional[dict] = None  # flush/cache counters when aggregating
    #: crc32 over the sorted final histogram — two runs computed the same
    #: counts iff their digests are equal (the sync-vs-async A/B check)
    digest: str = ""


def _counts_digest(counts: dict) -> str:
    crc = 0
    for key in sorted(counts):
        crc = zlib.crc32(f"{key}:{counts[key]};".encode("utf-8"), crc)
    return f"{crc:08x}"


def _reads_for_rank(data: GenomeData, rank: int, total: int):
    return data.reads[rank::total]


def run_kmer_counting(backend: str, spec: ClusterSpec, data: GenomeData,
                      min_count: int = 1,
                      aggregation: Union[int, str] = 0,
                      instrument=None, batch_charge: bool = False,
                      sim_only: bool = False, async_api: bool = False,
                      window=None) -> KmerResult:
    """Count k-mers on ``backend``.

    ``min_count`` is Meraculous's noise filter: k-mers observed fewer than
    ``min_count`` times (mostly sequencing errors when ``error_rate > 0``)
    are dropped from the final histogram.

    ``aggregation`` (HCL only): write-combine up to that many upserts per
    destination partition into one invocation.  Upserts are commutative,
    so the final histogram is identical; 0 keeps the classic
    one-invocation-per-k-mer behavior.

    ``batch_charge`` (HCL only): fused closed-form charging of uncontended
    coalescer flush transport (see ``DistributedContainer``).

    ``sim_only`` (HCL only): timing-only mode — skips the exact sequential
    reference histogram (which re-counts every k-mer single-threaded) in
    favor of O(distinct) conservation checks.  Upsert deltas are semantic
    and never stubbed, so the histogram itself is still exact and the
    simulated timeline is bit-identical to the full-data run.

    ``async_api`` (HCL only): count through the pipelined-futures API
    (``async_rmw``) instead of per-op generators.  ``aggregation``
    defaults to ``"auto"`` (the self-tuning coalescer) when left unset.

    ``window`` (HCL only): AIMD congestion-window config for the RPC
    client (``True`` for defaults, a ``WindowConfig`` to tune).
    """
    if backend == "hcl":
        return _run_hcl(spec, data, min_count, aggregation, instrument,
                        batch_charge=batch_charge, sim_only=sim_only,
                        async_api=async_api, window=window)
    if backend == "bcl":
        return _run_bcl(spec, data, min_count)
    raise ValueError(f"unknown backend {backend!r}")


def _verify(counts: dict, data: GenomeData, min_count: int) -> bool:
    reference = {
        k: c for k, c in exact_kmer_counts(data).items() if c >= min_count
    }
    return counts == reference


def _verify_cheap(raw_counts: dict, data: GenomeData, seen: int) -> bool:
    """Conservation invariants for ``sim_only`` runs (pre-filter counts):
    every upsert landed exactly once, every stored k-mer has the right
    width, and no count is non-positive."""
    if sum(raw_counts.values()) != seen:
        return False
    return all(
        len(k) == data.k and c > 0 for k, c in raw_counts.items()
    )


def _apply_filter(counts: dict, min_count: int):
    kept = {k: c for k, c in counts.items() if c >= min_count}
    return kept, len(counts) - len(kept)


def _run_hcl(spec: ClusterSpec, data: GenomeData,
             min_count: int = 1, aggregation: Union[int, str] = 0,
             instrument=None, batch_charge: bool = False,
             sim_only: bool = False, async_api: bool = False,
             window=None) -> KmerResult:
    if async_api and not aggregation:
        aggregation = "auto"
    hcl = HCL(spec, window=window)
    table = hcl.unordered_map("kmers", partitions=hcl.num_nodes,
                              initial_buckets=1024, aggregation=aggregation,
                              batch_charge=batch_charge, sim_only=sim_only)
    if instrument is not None:
        instrument(hcl)
    total_procs = spec.total_procs
    seen = 0

    if async_api:
        def rank_body(rank):
            nonlocal seen
            count = 0
            futs = []
            push = futs.append
            rmw = table.async_rmw
            for read in _reads_for_rank(data, rank, total_procs):
                for kmer in data.kmers_of_read(read):
                    push(rmw(rank, kmer, 1))
                    count += 1
            # Sync point: drain the write combiner, then await the few
            # stragglers (same-node ops complete through local processes).
            yield from table.flush(rank)
            for fut in futs:
                if not fut.done:
                    yield fut.wait()
                _ = fut.result  # surfaces any failed upsert
            seen += count
            return count
    else:
        def rank_body(rank):
            nonlocal seen
            count = 0
            for read in _reads_for_rank(data, rank, total_procs):
                for kmer in data.kmers_of_read(read):
                    if aggregation:
                        yield from table.upsert_buffered(rank, kmer, 1)
                    else:
                        yield from table.upsert(rank, kmer, 1)
                    count += 1
            if aggregation:
                yield from table.flush(rank)
            seen += count
            return count

    hcl.run_ranks(rank_body)
    counts = {k: v for part in table.partitions for k, v in part.structure.items()}
    verified_cheap = _verify_cheap(counts, data, seen) if sim_only else False
    counts, filtered = _apply_filter(counts, min_count)
    verified = verified_cheap if sim_only else _verify(counts, data, min_count)
    return KmerResult("hcl", hcl.num_nodes, seen, len(counts), hcl.now,
                      verified, filtered_kmers=filtered,
                      agg_report=table.aggregation_report() or None,
                      digest=_counts_digest(counts))


def _run_bcl(spec: ClusterSpec, data: GenomeData,
             min_count: int = 1) -> KmerResult:
    bcl = BCL(spec)
    nkmers = sum(max(0, len(r) - data.k + 1) for r in data.reads)
    # Static sizing at ~0.7 load on the expected distinct-k-mer count.
    capacity = max(256, int(nkmers / 2 / bcl.cluster.num_nodes / 0.7))
    table = bcl.hashmap(
        "kmers",
        capacity_per_partition=capacity,
        entry_size=64,
        inflight_slots=64,
        max_probes=capacity,
    )
    total_procs = spec.total_procs
    seen = 0

    def rank_body(rank):
        nonlocal seen
        count = 0
        for read in _reads_for_rank(data, rank, total_procs):
            for kmer in data.kmers_of_read(read):
                # Client-side atomic read-modify-write: CAS-lock the bucket,
                # read, write back, CAS-unlock (five remote ops).
                yield from table.atomic_update(
                    rank, kmer, lambda v: v + 1, initial=0
                )
                count += 1
        seen += count
        return count

    procs = bcl.cluster.spawn_ranks(rank_body)
    bcl.cluster.run()
    for p in procs:
        p.result
    counts = dict(table.stored_items())
    counts, filtered = _apply_filter(counts, min_count)
    return KmerResult("bcl", bcl.cluster.num_nodes, seen, len(counts),
                      bcl.sim.now, _verify(counts, data, min_count),
                      filtered_kmers=filtered, digest=_counts_digest(counts))
