"""ISx — scalable integer sort (Hanebutte & Hemstad [34]), both backends.

"It consists of two phases: a data distribution phase and a local sorting
phase ... By default, there is one bucket on each node" (Section IV-D1).
Keys are uniform; every rank knows the key range, so bucket assignment is
pure arithmetic.

* **HCL version** — each node hosts an ``HCL::priority_queue`` bucket.
  Ranks vector-push their keys; the queue "sorts the data as it arrives"
  in O(log n) per element, so the final phase is just a drain — "the cost
  of sorting gets hidden behind the data movement via the network".
* **BCL version** — each node hosts a BCL circular queue.  Ranks push
  keys one by one (the client-side protocol has no server to batch on),
  then one rank per node pops everything and performs an explicit local
  sort whose n·log n CPU cost is charged to the timeline.

Both versions *verify* that the concatenation of per-node results is the
sorted input.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import log2
from typing import Dict, List, Optional

import numpy as np

from repro.bcl import BCL
from repro.config import ClusterSpec
from repro.core import HCL

__all__ = ["IsxResult", "run_isx"]

MAX_KEY = 1 << 27  # ISx default key domain (2^27)


@dataclass
class IsxResult:
    backend: str
    nodes: int
    total_keys: int
    time_seconds: float
    verified: bool
    agg_report: Optional[dict] = None  # summed flush counters when aggregating


def _generate_keys(rank: int, keys_per_rank: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng((seed << 20) + rank)
    return rng.integers(0, MAX_KEY, size=keys_per_rank, dtype=np.int64)


def _bucket_of(key: int, nodes: int) -> int:
    return min(nodes - 1, int(key * nodes // MAX_KEY))


def run_isx(
    backend: str,
    spec: ClusterSpec,
    keys_per_rank: int = 128,
    batch: int = 32,
    seed: int = 1,
    aggregation: int = 0,
    instrument=None,
    batch_charge: bool = False,
    sim_only: bool = False,
) -> IsxResult:
    """Run the ISx kernel on ``backend`` ("hcl" or "bcl").

    ``aggregation`` (HCL only): scatter keys through per-bucket write
    buffers instead of the app-managed ``push_many`` blocks — the same
    keys reach the same buckets (the priority queue sorts on arrival), in
    one ``batch`` invocation per flush.

    ``instrument`` (HCL only): callable invoked with the :class:`HCL`
    runtime after the containers are built but before the workload runs —
    the attach point for tracers and telemetry samplers.

    ``batch_charge`` (HCL only): fused closed-form charging of uncontended
    coalescer flush transport (see ``DistributedContainer``).

    ``sim_only`` (HCL only): timing-only mode — containers stub opaque
    payloads and verification drops the full O(N log N) merge-sort check
    in favor of cheap invariants (per-bucket sortedness, bucket routing,
    key-count and key-sum conservation).  The simulated timeline is
    bit-identical to the full-data run.
    """
    if backend == "hcl":
        return _run_hcl(spec, keys_per_rank, batch, seed, aggregation,
                        instrument, batch_charge=batch_charge,
                        sim_only=sim_only)
    if backend == "bcl":
        return _run_bcl(spec, keys_per_rank, seed)
    raise ValueError(f"unknown backend {backend!r}")


def _verify(per_node: List[List[int]], all_keys: List[int], nodes: int) -> bool:
    merged: List[int] = []
    for node_id, chunk in enumerate(per_node):
        if chunk != sorted(chunk):
            return False
        if any(_bucket_of(k, nodes) != node_id for k in chunk):
            return False
        merged.extend(chunk)
    return sorted(merged) == sorted(all_keys)


def _verify_cheap(per_node: List[List[int]], all_keys: List[int],
                  nodes: int) -> bool:
    """O(N) invariants for ``sim_only`` runs: per-bucket sortedness and
    routing, plus key-count and key-sum conservation — every key scattered
    came back out of exactly one bucket, unmodified in aggregate."""
    total = 0
    checksum = 0
    for node_id, chunk in enumerate(per_node):
        if any(a > b for a, b in zip(chunk, chunk[1:])):
            return False
        if any(_bucket_of(k, nodes) != node_id for k in chunk):
            return False
        total += len(chunk)
        checksum += sum(chunk)
    return total == len(all_keys) and checksum == sum(all_keys)


# -- HCL ----------------------------------------------------------------------

def _run_hcl(spec: ClusterSpec, keys_per_rank: int, batch: int,
             seed: int, aggregation: int = 0, instrument=None,
             batch_charge: bool = False, sim_only: bool = False) -> IsxResult:
    hcl = HCL(spec)
    nodes = hcl.num_nodes
    # Priority-queue coordinate space must cover MAX_KEY.
    buckets = [
        hcl.priority_queue(f"isx.bucket{i}", home_node=i, dims=9, base=8,
                           aggregation=aggregation,
                           batch_charge=batch_charge, sim_only=sim_only)
        for i in range(nodes)
    ]
    if instrument is not None:
        instrument(hcl)
    all_keys: List[int] = []

    def rank_body(rank):
        keys = _generate_keys(rank, keys_per_rank, seed)
        all_keys.extend(int(k) for k in keys)
        if aggregation:
            # Scatter through the transparent write buffers: pushes
            # write-combine per destination bucket and flush as single
            # batch invocations — no app-managed grouping needed.
            for key in keys:
                bucket_id = _bucket_of(int(key), nodes)
                yield from buckets[bucket_id].push_buffered(
                    rank, int(key), None
                )
            for bucket in buckets:
                yield from bucket.flush(rank)
            return len(keys)
        # Distribution phase: group keys by destination bucket, vector-push.
        by_bucket: Dict[int, List[int]] = {}
        for key in keys:
            by_bucket.setdefault(_bucket_of(int(key), nodes), []).append(int(key))
        for bucket_id, chunk in sorted(by_bucket.items()):
            for start in range(0, len(chunk), batch):
                entries = [(k, None) for k in chunk[start:start + batch]]
                yield from buckets[bucket_id].push_many(rank, entries)
        return len(keys)

    hcl.run_ranks(rank_body)

    # Drain phase: one co-located rank per node pops its (already sorted)
    # bucket; pops are local thanks to the hybrid access model.
    per_node: List[List[int]] = [[] for _ in range(nodes)]

    def drain_body(node_id):
        rank = node_id * spec.procs_per_node  # first rank on that node
        def gen():
            out = []
            while True:
                entries = yield from buckets[node_id].pop_many(rank, 64)
                if not entries:
                    break
                out.extend(k for k, _v in entries)
            per_node[node_id].extend(out)
        return gen()

    procs = [hcl.cluster.spawn(drain_body(i), name=f"drain-{i}")
             for i in range(nodes)]
    hcl.cluster.run()
    for p in procs:
        p.result
    elapsed = hcl.now
    agg = None
    if aggregation:
        # One coalescer per bucket queue: sum the flush counters.
        agg = {"aggregation": {}}
        for bucket in buckets:
            for k, v in bucket.aggregation_report()["aggregation"].items():
                agg["aggregation"][k] = agg["aggregation"].get(k, 0) + v
        flushes = agg["aggregation"]["flushes"]
        agg["aggregation"]["ops_per_flush"] = (
            agg["aggregation"]["flushed_ops"] / flushes if flushes else 0.0
        )
    verified = (
        _verify_cheap(per_node, all_keys, nodes) if sim_only
        else _verify(per_node, all_keys, nodes)
    )
    return IsxResult("hcl", nodes, len(all_keys), elapsed, verified,
                     agg_report=agg)


# -- BCL ----------------------------------------------------------------------

def _run_bcl(spec: ClusterSpec, keys_per_rank: int, seed: int) -> IsxResult:
    bcl = BCL(spec)
    nodes = bcl.cluster.num_nodes
    capacity = max(1024, 2 * keys_per_rank * spec.total_procs)
    queues = [
        bcl.queue(f"isx.bucket{i}", capacity=capacity, entry_size=8,
                  home_node=i, inflight_slots=64)
        for i in range(nodes)
    ]
    all_keys: List[int] = []

    def rank_body(rank):
        keys = _generate_keys(rank, keys_per_rank, seed)
        all_keys.extend(int(k) for k in keys)
        for key in keys:
            bucket = _bucket_of(int(key), nodes)
            yield from queues[bucket].push(rank, int(key))
        return len(keys)

    procs = bcl.cluster.spawn_ranks(rank_body)
    bcl.cluster.run()
    for p in procs:
        p.result

    per_node: List[List[int]] = [[] for _ in range(nodes)]

    def drain_body(node_id):
        rank = node_id * spec.procs_per_node
        def gen():
            out = []
            while True:
                value, ok = yield from queues[node_id].pop(rank)
                if not ok:
                    break
                out.append(value)
            # Explicit local sort: charge n log n comparisons on the CPU.
            n = len(out)
            if n > 1:
                yield bcl.sim.timeout(
                    2.0 * n * log2(n) * bcl.cost.local_op
                )
            per_node[node_id].extend(sorted(out))
        return gen()

    procs = [bcl.cluster.spawn(drain_body(i), name=f"drain-{i}")
             for i in range(nodes)]
    bcl.cluster.run()
    for p in procs:
        p.result
    elapsed = bcl.sim.now
    return IsxResult("bcl", nodes, len(all_keys), elapsed,
                     _verify(per_node, all_keys, nodes))
