"""Real-workload kernels from the paper's evaluation (Section IV-D).

* :mod:`repro.apps.isx` — the ISx integer bucket-sort mini-app [34]:
  distribution phase + local sort, weak-scaled.  The HCL version exploits
  ``HCL::priority_queue`` so data sorts *as it arrives* and the sort cost
  hides behind communication; the BCL version pushes into circular queues
  and pays an explicit local sort.
* :mod:`repro.apps.genome` — synthetic genome / short-read generator (the
  stand-in for Meraculous's proprietary input data).
* :mod:`repro.apps.kmer` — Meraculous k-mer counting: a histogram over all
  k-mers of the read set, built in a distributed hash map.
* :mod:`repro.apps.contig` — Meraculous contig generation: de Bruijn graph
  traversal over an unordered map of k-mer -> extensions.

Every kernel runs against both backends ("hcl" and "bcl") on identical
inputs and *verifies its output* (sortedness, exact counts, genome-substring
contigs), so the benchmark numbers come from correct executions.
"""

from repro.apps.genome import GenomeData, synthesize_genome
from repro.apps.isx import run_isx
from repro.apps.kmer import run_kmer_counting
from repro.apps.contig import run_contig_generation
from repro.apps.scheduler import Task, make_task_graph, run_scheduler
from repro.apps.bfs import make_graph, run_bfs

__all__ = [
    "GenomeData",
    "synthesize_genome",
    "run_isx",
    "run_kmer_counting",
    "run_contig_generation",
    "Task",
    "make_task_graph",
    "run_scheduler",
    "make_graph",
    "run_bfs",
]
