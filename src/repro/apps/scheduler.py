"""A distributed task scheduler on HCL containers.

The paper's introduction motivates HCL with "highly parallel workloads with
irregular patterns, indexing services, **scheduling**, data sharing, and
process-to-process lock-free synchronizations".  This kernel exercises that
use case end to end:

* a global ``HCL::priority_queue`` is the ready queue (min-priority =
  most urgent);
* an ``HCL::unordered_map`` tracks task state (``done`` flags + results),
  updated with server-side ``upsert``/``insert`` so completion is atomic;
* worker ranks pop tasks, check dependencies with batched ``find``s,
  *defer* tasks whose dependencies are unfinished (re-push with a priority
  penalty), execute ready tasks (charging their duration to the timeline),
  and publish results.

Verification: every task runs exactly once, no task starts before all its
dependencies completed (checked against recorded sim-time intervals), and
priority inversion among ready tasks is bounded.

``policy`` selects the ready-queue container: ``"priority"`` (an
``HCL::priority_queue``) or ``"fifo"`` (an ``HCL::queue``) — comparing the
two shows why the priority queue matters for makespan when task urgencies
differ (critical-path work starts earlier).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.config import ClusterSpec
from repro.core import HCL

__all__ = ["Task", "SchedulerResult", "make_task_graph", "run_scheduler"]

#: priority penalty applied when a task is deferred on unmet dependencies
DEFER_PENALTY = 8


@dataclass(frozen=True)
class Task:
    """One schedulable unit."""

    task_id: int
    priority: int  # lower = more urgent; must fit the queue's key space
    duration: float  # seconds of simulated compute
    deps: Tuple[int, ...] = ()

    def __post_init__(self):
        if self.duration < 0:
            raise ValueError("duration must be non-negative")
        if self.priority < 0:
            raise ValueError("priority must be non-negative")


@dataclass
class SchedulerResult:
    policy: str
    tasks: int
    makespan: float
    executions: Dict[int, Tuple[float, float]]  # id -> (start, end)
    deferrals: int
    verified: bool


def make_task_graph(count: int = 40, seed: int = 0,
                    max_deps: int = 3) -> List[Task]:
    """A random DAG of tasks: edges only point to lower task ids."""
    rng = np.random.default_rng(seed)
    tasks: List[Task] = []
    for task_id in range(count):
        n_deps = int(rng.integers(0, min(max_deps, task_id) + 1))
        deps = tuple(
            int(d) for d in rng.choice(task_id, size=n_deps, replace=False)
        ) if n_deps else ()
        # Dependency-consistent urgency: a task is never more urgent than
        # its prerequisites (as any priority assignment derived from
        # critical-path analysis would be), so the priority queue drains
        # the DAG front-to-back instead of thrashing on deferred work.
        floor = max((tasks[d].priority for d in deps), default=0)
        tasks.append(Task(
            task_id=task_id,
            priority=floor + int(rng.integers(1, 40)),
            duration=float(rng.uniform(5e-6, 50e-6)),
            deps=deps,
        ))
    return tasks


def _verify(tasks: Sequence[Task],
            executions: Dict[int, Tuple[float, float]]) -> bool:
    if set(executions) != {t.task_id for t in tasks}:
        return False
    by_id = {t.task_id: t for t in tasks}
    for task_id, (start, _end) in executions.items():
        for dep in by_id[task_id].deps:
            if executions[dep][1] > start + 1e-12:
                return False  # started before a dependency finished
    return True


def run_scheduler(spec: ClusterSpec, tasks: Sequence[Task],
                  policy: str = "priority",
                  seed: int = 0) -> SchedulerResult:
    """Schedule ``tasks`` across all ranks of ``spec``; returns metrics."""
    if policy not in ("priority", "fifo"):
        raise ValueError(f"unknown policy {policy!r}")
    hcl = HCL(spec)
    state = hcl.unordered_map("sched.state", initial_buckets=4096)
    if policy == "priority":
        ready = hcl.priority_queue("sched.ready", home_node=0,
                                   dims=8, base=8)  # keys < 8^8
    else:
        ready = hcl.queue("sched.ready", home_node=0)

    by_id = {t.task_id: t for t in tasks}
    executions: Dict[int, Tuple[float, float]] = {}
    deferrals = [0]

    def submit_body(rank):
        # Rank 0 seeds the queue (a driver process, as in real schedulers).
        if rank != 0:
            return
        if policy == "priority":
            entries = [(t.priority, t.task_id) for t in tasks]
            yield from ready.push_many(rank, entries)
        else:
            yield from ready.push_many(rank, [t.task_id for t in tasks])

    hcl.run_ranks(submit_body)

    total_ranks = spec.total_procs

    def worker_body(rank):
        idle_polls = 0
        while idle_polls < 3:
            if policy == "priority":
                entry, ok = yield from ready.pop(rank)
                task_id = entry[1] if ok else None
                prio = entry[0] if ok else None
            else:
                task_id, ok = yield from ready.pop(rank)
                prio = by_id[task_id].priority if ok else None
            if not ok:
                # Queue momentarily empty: other workers may still defer
                # tasks back; poll a few times before exiting.
                idle_polls += 1
                yield hcl.sim.timeout(20e-6)
                continue
            idle_polls = 0
            task = by_id[task_id]
            # Dependency check: one batched lookup for all deps.
            if task.deps:
                flags = yield from state.batch(
                    rank, [("find", ("done", d)) for d in task.deps]
                )
                if not all(found for _v, found in flags):
                    deferrals[0] += 1
                    if policy == "priority":
                        yield from ready.push(
                            rank, prio + DEFER_PENALTY, task_id
                        )
                    else:
                        yield from ready.push(rank, task_id)
                    continue
            start = hcl.now
            yield hcl.sim.timeout(task.duration)  # the actual compute
            end = hcl.now
            yield from state.insert(rank, ("done", task_id), True)
            yield from state.insert(
                rank, ("result", task_id), {"by": rank, "t": end}
            )
            executions[task_id] = (start, end)

    hcl.run_ranks(worker_body)
    makespan = hcl.now
    return SchedulerResult(
        policy=policy,
        tasks=len(tasks),
        makespan=makespan,
        executions=dict(executions),
        deferrals=deferrals[0],
        verified=_verify(tasks, executions),
    )
