"""Distributed breadth-first search — the irregular-application archetype.

The paper's opening sentence: "Applications that include complex data
distribution and irregular control flows are extremely complex to write" —
graph traversal is the canonical example.  This kernel runs a
level-synchronous BFS where:

* the adjacency lists live in a distributed hash map (vertex -> neighbors),
  partitioned by vertex id;
* the visited/distance table is a second hash map, updated with
  ``upsert``-style conditional inserts executed at the owner (HCL) or
  CAS-locked client-side updates (BCL);
* each rank expands its share of the current frontier, batching neighbor
  lookups; a barrier separates levels.

Verification: distances equal ``networkx.single_source_shortest_path_length``
on the same graph, for every reachable vertex.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import networkx as nx

from repro.bcl import BCL
from repro.config import ClusterSpec
from repro.core import HCL, Collectives

__all__ = ["BfsResult", "make_graph", "run_bfs"]


@dataclass
class BfsResult:
    backend: str
    vertices: int
    edges: int
    levels: int
    reached: int
    time_seconds: float
    verified: bool


def make_graph(vertices: int = 200, avg_degree: float = 4.0,
               seed: int = 0) -> nx.Graph:
    """A connected-ish random graph (Erdos-Renyi with a path backbone)."""
    p = min(1.0, avg_degree / max(1, vertices - 1))
    g = nx.gnp_random_graph(vertices, p, seed=seed)
    # Backbone keeps the graph mostly connected so BFS has real depth.
    for u in range(0, vertices - 1, 7):
        g.add_edge(u, u + 1)
    return g


def _reference(graph: nx.Graph, source: int) -> Dict[int, int]:
    return dict(nx.single_source_shortest_path_length(graph, source))


def run_bfs(backend: str, spec: ClusterSpec, graph: nx.Graph,
            source: int = 0, aggregation: int = 0,
            read_cache: bool = False) -> BfsResult:
    """Run level-synchronous BFS.

    HCL-only knobs: ``aggregation`` write-combines the adjacency-load
    phase; ``read_cache`` caches the (read-only after load) adjacency
    lists, so frontier expansions re-reading a vertex skip the wire.
    """
    if backend == "hcl":
        return _run_hcl(spec, graph, source, aggregation, read_cache)
    if backend == "bcl":
        return _run_bcl(spec, graph, source)
    raise ValueError(f"unknown backend {backend!r}")


def _load_phase_items(graph: nx.Graph, rank: int, total: int):
    nodes = sorted(graph.nodes())
    for v in nodes[rank::total]:
        yield v, sorted(graph.neighbors(v))


def _run_hcl(spec: ClusterSpec, graph: nx.Graph, source: int,
             aggregation: int = 0, read_cache: bool = False) -> BfsResult:
    hcl = HCL(spec)
    adj = hcl.unordered_map("bfs.adj", initial_buckets=4096,
                            aggregation=aggregation, read_cache=read_cache)
    dist = hcl.unordered_map("bfs.dist", initial_buckets=4096)
    coll = Collectives(hcl)
    total = spec.total_procs
    levels_box = {"levels": 0}

    def body(rank):
        # Phase 1: load adjacency — through the write buffers when
        # aggregation is on (flushed by the barrier), else batched per
        # partition by the app.
        if aggregation:
            for v, neighbors in _load_phase_items(graph, rank, total):
                yield from adj.insert_buffered(rank, v, neighbors)
        else:
            ops = [("insert", v, neighbors)
                   for v, neighbors in _load_phase_items(graph, rank, total)]
            if ops:
                yield from adj.batch(rank, ops)
        yield from coll.barrier(rank)
        # Phase 2: level-synchronous expansion.
        if rank == 0:
            yield from dist.insert(rank, source, 0)
        frontier = [source]  # every rank sees the same frontier list
        level = 0
        while True:
            mine = frontier[rank::total]  # block-cyclic frontier split
            discovered: List[int] = []
            if mine:
                neighbor_lists = yield from adj.batch(
                    rank, [("find", v) for v in mine]
                )
                candidates = sorted({
                    n
                    for lst, found in neighbor_lists if found
                    for n in lst
                })
                if candidates:
                    settled = yield from dist.batch(
                        rank, [("find", n) for n in candidates]
                    )
                    fresh = [n for n, (_d, found) in zip(candidates, settled)
                             if not found]
                    if fresh:
                        yield from dist.batch(
                            rank,
                            [("insert", n, level + 1) for n in fresh],
                        )
                        discovered = fresh
            merged = yield from coll.all_gather(rank, discovered)
            nxt = sorted({v for chunk in merged for v in chunk})
            if not nxt:
                break
            frontier = nxt
            level += 1
        if rank == 0:
            levels_box["levels"] = level
        yield from coll.barrier(rank)

    hcl.run_ranks(body)
    distances = {
        k: v for part in dist.partitions for k, v in part.structure.items()
    }
    expected = _reference(graph, source)
    return BfsResult(
        "hcl", graph.number_of_nodes(), graph.number_of_edges(),
        levels_box["levels"], len(distances), hcl.now,
        distances == expected,
    )


def _run_bcl(spec: ClusterSpec, graph: nx.Graph, source: int) -> BfsResult:
    bcl = BCL(spec)
    nverts = graph.number_of_nodes()
    adj = bcl.hashmap("bfs.adj", capacity_per_partition=4 * nverts,
                      entry_size=256, inflight_slots=32)
    dist = bcl.hashmap("bfs.dist", capacity_per_partition=4 * nverts,
                       entry_size=64, inflight_slots=32)
    barrier = bcl.barrier()
    total = spec.total_procs
    results: Dict[int, List[int]] = {}

    def body(rank):
        for v, neighbors in _load_phase_items(graph, rank, total):
            yield from adj.insert(rank, v, neighbors)
        yield barrier.wait()
        if rank == 0:
            yield from dist.insert(rank, source, 0)
        yield barrier.wait()
        frontier = [source]
        level = 0
        while True:
            mine = frontier[rank::total]
            discovered: List[int] = []
            for v in mine:
                neighbors, found = yield from adj.find(rank, v)
                if not found:
                    continue
                for n in neighbors:
                    # Client-side conditional insert: CAS-locked RMW keeps
                    # the first writer's distance.
                    value = yield from dist.atomic_update(
                        rank, n,
                        lambda d, lvl=level + 1: d if d is not None else lvl,
                        initial=None,
                    )
                    if value == level + 1:
                        discovered.append(n)
            results[(rank, level)] = discovered
            yield barrier.wait()
            merged = sorted({
                v
                for r in range(total)
                for v in results.get((r, level), [])
            })
            yield barrier.wait()
            if not merged:
                break
            frontier = merged
            level += 1
        return level

    procs = bcl.cluster.spawn_ranks(body)
    bcl.cluster.run()
    levels = max(p.result for p in procs)
    distances = dict(dist.stored_items())
    expected = _reference(graph, source)
    return BfsResult(
        "bcl", graph.number_of_nodes(), graph.number_of_edges(),
        levels, len(distances), bcl.sim.now,
        distances == expected,
    )
