"""Meraculous contig generation — de Bruijn traversal (Section IV-D2).

"The contig generation is a de novo genome assembly pipeline that uses an
unordered map to traverse a de Bruijn graph of overlapping symbols."

Pipeline (faithful to the Meraculous kernel in Brock et al. [11]):

1. **Graph build** — every rank scans its reads and, for each k-mer
   occurrence, merges the observed left/right extension characters into the
   distributed hash map (k-mer -> :class:`ExtensionPair`).  HCL merges with
   one ``upsert`` per occurrence; BCL needs the client-side CAS-locked
   ``atomic_update``.
2. **Traversal** — ranks identify *UU k-mers* (unique left and right
   extension), pick seeds (UU k-mers whose predecessor is absent or not
   UU), and walk right through the graph assembling contigs, one ``find``
   per step.

Output contigs are verified to be substrings of the synthetic genome, and
the HCL and BCL runs produce identical contig sets on identical inputs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Set

from repro.apps.genome import GenomeData
from repro.bcl import BCL
from repro.config import ClusterSpec
from repro.core import HCL

__all__ = ["ExtensionPair", "ContigResult", "run_contig_generation"]

#: Boundary marker for a k-mer at the start/end of a read.
BOUNDARY = "$"


class ExtensionPair:
    """Mergeable left/right extension sets.

    Supports ``0 + pair`` and ``pair + pair`` so that it can ride the
    generic upsert / atomic-update machinery of both backends.
    """

    __slots__ = ("lefts", "rights")

    def __init__(self, lefts: Set[str], rights: Set[str]):
        self.lefts = frozenset(lefts)
        self.rights = frozenset(rights)

    def __add__(self, other: "ExtensionPair") -> "ExtensionPair":
        if not isinstance(other, ExtensionPair):
            return NotImplemented
        return ExtensionPair(self.lefts | other.lefts,
                             self.rights | other.rights)

    def __radd__(self, other):
        if other == 0:  # the upsert "absent" base
            return self
        return NotImplemented

    def __eq__(self, other):
        return (
            isinstance(other, ExtensionPair)
            and self.lefts == other.lefts
            and self.rights == other.rights
        )

    @property
    def is_uu(self) -> bool:
        """Unique left and right extension (the traversable k-mers)."""
        return len(self.lefts) == 1 and len(self.rights) == 1

    @property
    def nbytes(self) -> int:  # serialized-size hint for the cost model
        return 8 + len(self.lefts) + len(self.rights)

    def __repr__(self) -> str:  # pragma: no cover
        return f"ExtensionPair({sorted(self.lefts)}, {sorted(self.rights)})"


@dataclass
class ContigResult:
    backend: str
    nodes: int
    contigs: List[str]
    time_seconds: float
    verified: bool
    agg_report: Optional[dict] = None  # flush/cache counters when aggregating


def _occurrences(data: GenomeData, read: str):
    """Yield (kmer, left_ext, right_ext) for every k-mer in the read.

    A k-mer occurrence at a read edge has no context on that side; it
    contributes ``BOUNDARY`` which the ExtensionPair builder *drops* —
    read edges carry no extension information (otherwise every read
    boundary would break a contig, which real Meraculous avoids).
    """
    k = data.k
    for i in range(len(read) - k + 1):
        left = read[i - 1] if i > 0 else BOUNDARY
        right = read[i + k] if i + k < len(read) else BOUNDARY
        yield read[i:i + k], left, right


def make_pair(left: str, right: str) -> ExtensionPair:
    """Extension pair from one occurrence, dropping boundary markers."""
    return ExtensionPair(
        set() if left == BOUNDARY else {left},
        set() if right == BOUNDARY else {right},
    )


def _assemble(find, data: GenomeData, my_kmers: List[str], find_batch=None):
    """Generator: traverse from seeds among ``my_kmers``; yields contigs.

    ``find(kmer)`` is a generator returning ``ExtensionPair | None``.
    ``find_batch(kmers)``, when provided, resolves many lookups with
    overlapped (asynchronous) requests — HCL's future-based RPC lets the
    seed-filter phase pipeline its lookups (Section III-C4), while the
    walk itself stays inherently sequential (each step's key depends on
    the previous result).
    """
    contigs: List[str] = []
    # Phase 1: resolve every candidate's extensions (batched if possible).
    if find_batch is not None:
        exts = yield from find_batch(my_kmers)
    else:
        exts = []
        for kmer in my_kmers:
            ext = yield from find(kmer)
            exts.append(ext)
    # Phase 2: seed check (one predecessor lookup per UU candidate).
    candidates = [(k, e) for k, e in zip(my_kmers, exts)
                  if e is not None and e.is_uu]
    preds = [next(iter(e.lefts)) + k[:-1] for k, e in candidates]
    if find_batch is not None:
        pred_exts = yield from find_batch(preds)
    else:
        pred_exts = []
        for pred in preds:
            ext = yield from find(pred)
            pred_exts.append(ext)
    # Phase 3: walk right from each seed.
    for (kmer, ext), pred_ext in zip(candidates, pred_exts):
        if pred_ext is not None and pred_ext.is_uu:
            continue  # interior k-mer; the seed is further left
        contig = kmer
        current = kmer
        current_ext = ext
        while True:
            right = next(iter(current_ext.rights))
            nxt = current[1:] + right
            nxt_ext = yield from find(nxt)
            if nxt_ext is None or not nxt_ext.is_uu:
                break
            contig += right
            current, current_ext = nxt, nxt_ext
        contigs.append(contig)
    return contigs


def _verify(contigs: List[str], data: GenomeData) -> bool:
    return bool(contigs) and all(c in data.genome for c in contigs)


def run_contig_generation(backend: str, spec: ClusterSpec,
                          data: GenomeData, aggregation: int = 0,
                          read_cache: bool = False,
                          instrument=None,
                          batch_charge: bool = False) -> ContigResult:
    """Run the contig kernel.

    HCL-only knobs: ``aggregation`` write-combines the build phase's
    extension merges (commutative ExtensionPair unions — identical final
    graph) into one invocation per flush; ``read_cache`` serves repeated
    traversal lookups (every interior k-mer is read by the seed filter AND
    the walk) from the epoch-validated locality cache; ``batch_charge``
    fuses uncontended flush transport into closed-form charges.

    There is deliberately no ``sim_only`` knob here: the traversal phase
    reads the stored ExtensionPair values back, so stubbing payloads would
    break the walk — contig always runs with real data.
    """
    if backend == "hcl":
        return _run_hcl(spec, data, aggregation, read_cache, instrument,
                        batch_charge=batch_charge)
    if backend == "bcl":
        return _run_bcl(spec, data)
    raise ValueError(f"unknown backend {backend!r}")


def _rank_kmers(data: GenomeData, rank: int, total: int) -> List[str]:
    """The distinct k-mers a rank seeds from (its slice of the reads)."""
    seen: Set[str] = set()
    ordered: List[str] = []
    for read in data.reads[rank::total]:
        for kmer, _l, _r in _occurrences(data, read):
            if kmer not in seen:
                seen.add(kmer)
                ordered.append(kmer)
    return ordered


def _run_hcl(spec: ClusterSpec, data: GenomeData, aggregation: int = 0,
             read_cache: bool = False, instrument=None,
             batch_charge: bool = False) -> ContigResult:
    hcl = HCL(spec)
    graph = hcl.unordered_map("debruijn", partitions=hcl.num_nodes,
                              initial_buckets=1024, aggregation=aggregation,
                              read_cache=read_cache,
                              batch_charge=batch_charge)
    if instrument is not None:
        instrument(hcl)
    total = spec.total_procs
    all_contigs: Set[str] = set()

    def build_body(rank):
        for read in data.reads[rank::total]:
            for kmer, left, right in _occurrences(data, read):
                if aggregation:
                    yield from graph.upsert_buffered(
                        rank, kmer, make_pair(left, right)
                    )
                else:
                    yield from graph.upsert(rank, kmer, make_pair(left, right))
        if aggregation:
            yield from graph.flush(rank)

    hcl.run_ranks(build_body)

    def traverse_body(rank):
        def find(kmer):
            value, found = yield from graph.find(rank, kmer)
            return value if found else None

        def find_batch(kmers, window=16):
            """Overlapped lookups through HCL's asynchronous futures."""
            out = []
            for start in range(0, len(kmers), window):
                futs = [graph.find_async(rank, k)
                        for k in kmers[start:start + window]]
                for fut in futs:
                    yield fut.wait()
                    value, found = fut.result
                    out.append(value if found else None)
            return out

        contigs = yield from _assemble(
            find, data, _rank_kmers(data, rank, total), find_batch=find_batch
        )
        all_contigs.update(contigs)

    hcl.run_ranks(traverse_body)
    contigs = sorted(all_contigs)
    return ContigResult("hcl", hcl.num_nodes, contigs, hcl.now,
                        _verify(contigs, data),
                        agg_report=graph.aggregation_report() or None)


def _run_bcl(spec: ClusterSpec, data: GenomeData) -> ContigResult:
    bcl = BCL(spec)
    nkmers = sum(max(0, len(r) - data.k + 1) for r in data.reads)
    # Static provisioning at ~0.7 load (distinct k-mers are ~1/3 of the
    # occurrence count for overlapping reads): linear-probe chains cost
    # BCL one extra round trip per probe during the traversal phase.
    capacity = max(256, int(nkmers / 2 / bcl.cluster.num_nodes / 0.7))
    graph = bcl.hashmap(
        "debruijn",
        capacity_per_partition=capacity,
        entry_size=96,
        inflight_slots=64,
        max_probes=capacity,
    )
    total = spec.total_procs
    all_contigs: Set[str] = set()

    def build_body(rank):
        for read in data.reads[rank::total]:
            for kmer, left, right in _occurrences(data, read):
                pair = make_pair(left, right)
                yield from graph.atomic_update(
                    rank, kmer, lambda v, p=pair: (v + p) if v != 0 else p,
                    initial=0,
                )

    procs = bcl.cluster.spawn_ranks(build_body)
    bcl.cluster.run()
    for p in procs:
        p.result

    def traverse_body(rank):
        def find(kmer):
            value, found = yield from graph.find(rank, kmer)
            return value if found else None

        def gen():
            contigs = yield from _assemble(
                find, data, _rank_kmers(data, rank, total)
            )
            all_contigs.update(contigs)
        return gen()

    procs = [bcl.cluster.spawn(traverse_body(r), name=f"traverse-{r}")
             for r in range(total)]
    bcl.cluster.run()
    for p in procs:
        p.result
    contigs = sorted(all_contigs)
    return ContigResult("bcl", bcl.cluster.num_nodes, contigs, bcl.sim.now,
                        _verify(contigs, data))
