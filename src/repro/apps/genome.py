"""Synthetic genome and short-read generation.

Meraculous runs on real DNA sequencing data, which we do not have; per the
substitution rule we synthesize the closest equivalent that exercises the
same code paths: a random genome string over {A,C,G,T} and a set of
fixed-length reads sampled uniformly from it (error-free by default so that
k-mer counting and contig generation have exactly-checkable answers;
optional substitution errors exercise the low-count filtering path that
real Meraculous uses to drop sequencing noise).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

__all__ = ["GenomeData", "synthesize_genome", "exact_kmer_counts"]

_ALPHABET = np.frombuffer(b"ACGT", dtype=np.uint8)


@dataclass
class GenomeData:
    """A synthetic genome plus reads sampled from it."""

    genome: str
    reads: List[str]
    k: int

    @property
    def num_reads(self) -> int:
        return len(self.reads)

    def kmers_of_read(self, read: str) -> List[str]:
        k = self.k
        return [read[i:i + k] for i in range(len(read) - k + 1)]


def synthesize_genome(
    genome_length: int = 10_000,
    num_reads: int = 500,
    read_length: int = 100,
    k: int = 19,
    error_rate: float = 0.0,
    seed: int = 0,
) -> GenomeData:
    """Build a random genome and uniform reads (optionally with errors)."""
    if read_length < k:
        raise ValueError("read_length must be >= k")
    if genome_length < read_length:
        raise ValueError("genome_length must be >= read_length")
    rng = np.random.default_rng(seed)
    codes = rng.integers(0, 4, size=genome_length)
    genome_bytes = _ALPHABET[codes]
    genome = genome_bytes.tobytes().decode("ascii")
    starts = rng.integers(0, genome_length - read_length + 1, size=num_reads)
    reads = []
    for s in starts:
        read = bytearray(genome_bytes[s:s + read_length])
        if error_rate > 0:
            flips = rng.random(read_length) < error_rate
            for i in np.nonzero(flips)[0]:
                read[i] = _ALPHABET[rng.integers(0, 4)]
        reads.append(read.decode("ascii"))
    return GenomeData(genome=genome, reads=reads, k=k)


def exact_kmer_counts(data: GenomeData) -> Dict[str, int]:
    """Reference histogram for verification."""
    counts: Dict[str, int] = {}
    for read in data.reads:
        for kmer in data.kmers_of_read(read):
            counts[kmer] = counts.get(kmer, 0) + 1
    return counts
