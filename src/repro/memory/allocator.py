"""First-fit free-list allocator with coalescing and in-place realloc.

HCL manages partition memory dynamically (Section IV-B1: "HCL manages memory
dynamically and initializes the target partition with a smaller size.  It
expands its size as operations are executed").  This allocator provides the
mechanism: containers ``alloc`` their partition, ``realloc`` on resize, and
fall back to alloc-copy-free when in-place growth fails — exactly the
"realloc, else rehash into a new allocation" behaviour of Section III-D1.

Offsets and sizes are plain ints (bytes).  The allocator is deterministic,
which keeps simulations reproducible.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

__all__ = ["Allocator", "AllocationError"]


class AllocationError(MemoryError):
    """Raised when no free block can satisfy a request."""


class Allocator:
    """First-fit allocator over ``[0, capacity)`` with block coalescing."""

    def __init__(self, capacity: int, alignment: int = 8):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if alignment < 1 or (alignment & (alignment - 1)):
            raise ValueError("alignment must be a positive power of two")
        self.capacity = capacity
        self.alignment = alignment
        # Sorted list of (offset, size) free blocks.
        self._free: List[Tuple[int, int]] = [(0, capacity)]
        # offset -> allocated size
        self._live: Dict[int, int] = {}
        self.bytes_allocated = 0
        self.alloc_count = 0
        self.failed_allocs = 0

    # -- helpers -------------------------------------------------------------
    def _round(self, size: int) -> int:
        a = self.alignment
        return (size + a - 1) & ~(a - 1)

    # -- API -------------------------------------------------------------------
    def alloc(self, size: int) -> int:
        """Allocate ``size`` bytes; returns the offset."""
        if size <= 0:
            raise ValueError("allocation size must be positive")
        need = self._round(size)
        for i, (off, blk) in enumerate(self._free):
            if blk >= need:
                if blk == need:
                    self._free.pop(i)
                else:
                    self._free[i] = (off + need, blk - need)
                self._live[off] = need
                self.bytes_allocated += need
                self.alloc_count += 1
                return off
        self.failed_allocs += 1
        raise AllocationError(
            f"cannot allocate {size} bytes ({self.bytes_allocated}/"
            f"{self.capacity} in use, largest free block "
            f"{max((b for _, b in self._free), default=0)})"
        )

    def free(self, offset: int) -> None:
        size = self._live.pop(offset, None)
        if size is None:
            raise AllocationError(f"free of unallocated offset {offset}")
        self.bytes_allocated -= size
        self._insert_free(offset, size)

    def _insert_free(self, offset: int, size: int) -> None:
        """Insert a free block, coalescing with neighbours."""
        free = self._free
        lo, hi = 0, len(free)
        while lo < hi:
            mid = (lo + hi) // 2
            if free[mid][0] < offset:
                lo = mid + 1
            else:
                hi = mid
        # Coalesce with previous block.
        if lo > 0 and free[lo - 1][0] + free[lo - 1][1] == offset:
            poff, psize = free[lo - 1]
            offset, size = poff, psize + size
            free.pop(lo - 1)
            lo -= 1
        # Coalesce with next block.
        if lo < len(free) and offset + size == free[lo][0]:
            _noff, nsize = free[lo]
            size += nsize
            free.pop(lo)
        free.insert(lo, (offset, size))

    def realloc(self, offset: int, new_size: int) -> Optional[int]:
        """Try to grow/shrink the block at ``offset`` **in place**.

        Returns ``offset`` on success or ``None`` if in-place growth is
        impossible (caller should alloc-copy-free, i.e. "rehash with a new
        memory allocation" in the paper's words).
        """
        old = self._live.get(offset)
        if old is None:
            raise AllocationError(f"realloc of unallocated offset {offset}")
        need = self._round(new_size)
        if need <= 0:
            raise ValueError("realloc size must be positive")
        if need == old:
            return offset
        if need < old:
            self._live[offset] = need
            self.bytes_allocated -= old - need
            self._insert_free(offset + need, old - need)
            return offset
        # Grow: next free block must be adjacent and large enough.
        grow = need - old
        for i, (foff, fsize) in enumerate(self._free):
            if foff == offset + old:
                if fsize >= grow:
                    if fsize == grow:
                        self._free.pop(i)
                    else:
                        self._free[i] = (foff + grow, fsize - grow)
                    self._live[offset] = need
                    self.bytes_allocated += grow
                    return offset
                return None
            if foff > offset + old:
                break
        return None

    def size_of(self, offset: int) -> int:
        try:
            return self._live[offset]
        except KeyError:
            raise AllocationError(f"offset {offset} not allocated") from None

    @property
    def free_bytes(self) -> int:
        return self.capacity - self.bytes_allocated

    @property
    def fragmentation(self) -> float:
        """1 - (largest free block / total free bytes); 0 when unfragmented."""
        total = self.free_bytes
        if total == 0:
            return 0.0
        largest = max((b for _, b in self._free), default=0)
        return 1.0 - largest / total

    def check_invariants(self) -> None:
        """Validate internal consistency (used by property tests)."""
        blocks = sorted(
            [(o, s, "free") for o, s in self._free]
            + [(o, s, "live") for o, s in self._live.items()]
        )
        pos = 0
        prev_kind = None
        for off, size, kind in blocks:
            assert off == pos, f"gap/overlap at {pos}..{off}"
            assert size > 0
            if kind == "free":
                assert prev_kind != "free", "uncoalesced adjacent free blocks"
            pos = off + size
            prev_kind = kind
        assert pos == self.capacity, f"coverage ends at {pos} != {self.capacity}"
        assert self.bytes_allocated == sum(self._live.values())
