"""Real mmap-backed persistence for DataBoxes (Section III-C6).

HCL "can map the memory segments to a memory mapped file and let the kernel
synchronize the contents of the mapped memory region to the file".  We
reproduce the actual code path: a :class:`PersistentLog` is an append-only,
CRC-checked record log inside a real ``mmap``-ed file.  Containers append one
record per mutating operation; recovery replays the log.

Two durability modes mirror the paper:

* ``relaxed=False`` — per-operation ``flush`` (msync) so "all data is always
  present in the device";
* ``relaxed=True``  — synchronization "performed in the background": writes
  skip the flush, and ``sync()`` flushes everything at once.

Record format (little-endian)::

    magic  u32 = 0x48434C42  ("HCLB")
    length u32   payload bytes
    crc32  u32   of payload
    payload      length bytes
"""

from __future__ import annotations

import mmap
import os
import struct
import zlib
from dataclasses import dataclass
from typing import Iterator, Optional

__all__ = ["PersistentLog", "LogRecord", "CorruptRecordError"]

_MAGIC = 0x48434C42
_HEADER = struct.Struct("<III")
_GROW_CHUNK = 1 << 20  # grow the backing file 1 MiB at a time


class CorruptRecordError(ValueError):
    """A log record failed its CRC or structural check."""


@dataclass(frozen=True)
class LogRecord:
    offset: int
    payload: bytes


class PersistentLog:
    """Append-only record log in a memory-mapped file."""

    def __init__(self, path: str, relaxed: bool = False):
        self.path = path
        self.relaxed = relaxed
        exists = os.path.exists(path) and os.path.getsize(path) > 0
        self._fd = os.open(path, os.O_RDWR | os.O_CREAT, 0o644)
        if not exists:
            os.ftruncate(self._fd, _GROW_CHUNK)
        self._size = os.fstat(self._fd).st_size
        self._map = mmap.mmap(self._fd, self._size)
        self._write_pos = self._scan_end() if exists else 0
        self.records_written = 0
        self.flushes = 0
        self._closed = False

    # -- geometry -----------------------------------------------------------
    def _scan_end(self) -> int:
        """Find the end of the valid record chain on an existing file."""
        pos = 0
        for rec in self._iter_from(0, stop_on_corrupt=True):
            pos = rec.offset + _HEADER.size + len(rec.payload)
        return pos

    def _ensure(self, nbytes: int) -> None:
        need = self._write_pos + nbytes
        if need <= self._size:
            return
        new_size = self._size
        while new_size < need:
            new_size += _GROW_CHUNK
        self._map.flush()
        self._map.close()
        os.ftruncate(self._fd, new_size)
        self._size = new_size
        self._map = mmap.mmap(self._fd, self._size)

    # -- API ------------------------------------------------------------------
    def append(self, payload: bytes) -> int:
        """Append one record; returns its file offset."""
        if self._closed:
            raise ValueError("log is closed")
        if not isinstance(payload, (bytes, bytearray, memoryview)):
            raise TypeError("payload must be bytes-like")
        payload = bytes(payload)
        total = _HEADER.size + len(payload)
        self._ensure(total)
        off = self._write_pos
        self._map[off:off + _HEADER.size] = _HEADER.pack(
            _MAGIC, len(payload), zlib.crc32(payload)
        )
        self._map[off + _HEADER.size:off + total] = payload
        self._write_pos = off + total
        self.records_written += 1
        if not self.relaxed:
            self.flush(off, total)
        return off

    def flush(self, offset: int = 0, length: Optional[int] = None) -> None:
        """msync the mapped region (page-aligned internally)."""
        page = mmap.PAGESIZE
        start = (offset // page) * page
        if length is None:
            end = self._size
        else:
            end = min(self._size, offset + length)
        span = ((end - start + page - 1) // page) * page
        span = min(span, self._size - start)
        if span > 0:
            self._map.flush(start, span)
        self.flushes += 1

    def sync(self) -> None:
        """Flush everything (the background-sync catch-up in relaxed mode)."""
        self.flush(0, self._write_pos)

    def records(self) -> Iterator[LogRecord]:
        """Iterate all valid records; raises on a corrupt (non-empty) record."""
        return self._iter_from(0, stop_on_corrupt=False)

    def _iter_from(self, pos: int, stop_on_corrupt: bool) -> Iterator[LogRecord]:
        while pos + _HEADER.size <= self._size:
            magic, length, crc = _HEADER.unpack_from(self._map, pos)
            if magic != _MAGIC:
                if magic == 0:
                    return  # clean end of log
                if stop_on_corrupt:
                    return
                raise CorruptRecordError(f"bad magic {magic:#x} at offset {pos}")
            end = pos + _HEADER.size + length
            if end > self._size:
                if stop_on_corrupt:
                    return
                raise CorruptRecordError(f"truncated record at offset {pos}")
            payload = bytes(self._map[pos + _HEADER.size:end])
            if zlib.crc32(payload) != crc:
                if stop_on_corrupt:
                    return
                raise CorruptRecordError(f"CRC mismatch at offset {pos}")
            yield LogRecord(pos, payload)
            pos = end

    @property
    def bytes_used(self) -> int:
        return self._write_pos

    def close(self) -> None:
        if self._closed:
            return
        self.sync()
        self._map.close()
        os.close(self._fd)
        self._closed = True

    def __enter__(self) -> "PersistentLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
