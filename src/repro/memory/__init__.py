"""Memory substrate: allocators, segments, global address space, persistence.

HCL's containers live in a PGAS-style global address space: each node hosts
partitions in registered memory segments, addressed cluster-wide by
:class:`~repro.memory.gas.GlobalPointer`.  Segments are backed by a real
free-list :class:`~repro.memory.allocator.Allocator` (alloc / free / realloc
with coalescing) and can optionally be mapped to a *real* ``mmap``-backed
file (:mod:`repro.memory.persistent`) — the DataBox persistency feature of
Section III-C6.
"""

from repro.memory.allocator import Allocator, AllocationError
from repro.memory.segment import MemorySegment
from repro.memory.gas import GlobalPointer, GlobalAddressSpace
from repro.memory.persistent import PersistentLog, LogRecord, CorruptRecordError

__all__ = [
    "Allocator",
    "AllocationError",
    "MemorySegment",
    "GlobalPointer",
    "GlobalAddressSpace",
    "PersistentLog",
    "LogRecord",
    "CorruptRecordError",
]
