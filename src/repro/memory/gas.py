"""Global address space: cluster-wide names for partition memory.

Consistent with any PGAS implementation, HCL data structures "reside in a
global address space where multiple processes can access data concurrently"
(Section I).  A :class:`GlobalPointer` names a byte location anywhere in the
cluster; the :class:`GlobalAddressSpace` is the registry mapping segment
names to hosting nodes, and is what gives containers their "globally
visible" property without any central coordination (registration is
idempotent and keyed deterministically).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Tuple

from repro.memory.segment import MemorySegment

__all__ = ["GlobalPointer", "GlobalAddressSpace"]


@dataclass(frozen=True, order=True)
class GlobalPointer:
    """``(node, segment, offset)`` — a cluster-wide address."""

    node: int
    segment: str
    offset: int

    def __add__(self, delta: int) -> "GlobalPointer":
        return GlobalPointer(self.node, self.segment, self.offset + delta)

    def __sub__(self, other) -> int:
        if isinstance(other, GlobalPointer):
            if (self.node, self.segment) != (other.node, other.segment):
                raise ValueError("pointer difference across segments")
            return self.offset - other.offset
        return NotImplemented

    def is_local_to(self, node_id: int) -> bool:
        return self.node == node_id


class GlobalAddressSpace:
    """Registry of segments across the cluster."""

    def __init__(self):
        self._segments: Dict[Tuple[int, str], MemorySegment] = {}

    def register(self, segment: MemorySegment) -> GlobalPointer:
        key = (segment.node_id, segment.name)
        if key in self._segments:
            raise KeyError(f"segment {key} already registered")
        self._segments[key] = segment
        return GlobalPointer(segment.node_id, segment.name, 0)

    def deregister(self, segment: MemorySegment) -> None:
        self._segments.pop((segment.node_id, segment.name), None)

    def resolve(self, ptr: GlobalPointer) -> MemorySegment:
        try:
            return self._segments[(ptr.node, ptr.segment)]
        except KeyError:
            raise KeyError(
                f"no segment {ptr.segment!r} on node {ptr.node}"
            ) from None

    def segment(self, node: int, name: str) -> Optional[MemorySegment]:
        return self._segments.get((node, name))

    def segments_on(self, node: int) -> Iterator[MemorySegment]:
        for (nid, _), seg in self._segments.items():
            if nid == node:
                yield seg

    def __len__(self) -> int:
        return len(self._segments)

    def __iter__(self) -> Iterator[MemorySegment]:
        return iter(self._segments.values())
