"""Memory segments: allocator + node accounting + optional persistence.

A :class:`MemorySegment` is the unit a container partition lives in.  It
couples three things:

* a registered RDMA :class:`~repro.fabric.nic.MemoryRegion` on the hosting
  node (so one-sided verbs can reach it),
* a real :class:`~repro.memory.allocator.Allocator` managing the byte range,
* optionally a :class:`~repro.memory.persistent.PersistentLog` for DataBox
  persistence.

``grow()`` implements the paper's resize protocol: try ``realloc`` (modeled
as an in-place region resize), and report whether the caller must rehash.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.fabric.node import Node
from repro.memory.allocator import Allocator
from repro.memory.persistent import PersistentLog

__all__ = ["MemorySegment"]


class MemorySegment:
    """A partition-backing slab on one node."""

    _counter = 0

    def __init__(
        self,
        node: Node,
        size: int,
        name: Optional[str] = None,
        backing_path: Optional[str] = None,
        relaxed_persistence: bool = False,
    ):
        MemorySegment._counter += 1
        self.node = node
        self.name = name or f"seg-{MemorySegment._counter}"
        self.region = node.register_region(self.name, size)
        self.allocator = Allocator(size)
        self.log: Optional[PersistentLog] = None
        if backing_path is not None:
            self.log = PersistentLog(backing_path, relaxed=relaxed_persistence)
        self.resize_count = 0
        self.rehash_count = 0

    @property
    def size(self) -> int:
        return self.region.size

    @property
    def node_id(self) -> int:
        return self.node.node_id

    # -- allocation -----------------------------------------------------------
    def alloc(self, nbytes: int) -> int:
        return self.allocator.alloc(nbytes)

    def free(self, offset: int) -> None:
        self.allocator.free(offset)

    # -- growth protocol -------------------------------------------------------
    def grow(self, new_size: int) -> bool:
        """Grow the segment to ``new_size`` bytes.

        Returns ``True`` if the underlying region grew in place (realloc
        succeeded); ``False`` when the region had to be re-created, which
        means the container must re-insert its entries ("rehashed with a new
        memory allocation", Section III-D1).  Either way the segment ends at
        ``new_size``.
        """
        if new_size <= self.size:
            raise ValueError("grow requires a larger size")
        self.resize_count += 1
        delta = new_size - self.size
        try:
            self.node.allocate(delta, what=f"segment {self.name} grow")
        except MemoryError:
            raise
        self.region.size = new_size
        # Mirror into the allocator: extend its range.  In-place extension
        # succeeds unless the node-level allocator placed something after us;
        # we model a probabilistic-but-deterministic failure via allocator
        # fragmentation: if the old slab was fully packed, realloc works,
        # otherwise a fragmented slab forces a fresh allocation + rehash.
        in_place = self.allocator.fragmentation < 0.5
        if in_place:
            extra = new_size - self.allocator.capacity
            self.allocator.capacity = new_size
            self.allocator._insert_free(new_size - extra, extra)
        else:
            self.rehash_count += 1
            live = dict(self.allocator._live)
            self.allocator = Allocator(new_size)
            for _off, sz in live.items():
                self.allocator.alloc(sz)
        return in_place

    # -- data plane ----------------------------------------------------------------
    def put(self, offset: int, payload: Any) -> None:
        self.region.put_object(offset, payload)

    def get(self, offset: int) -> Any:
        return self.region.get_object(offset)

    # -- persistence -----------------------------------------------------------------
    def persist(self, payload: bytes) -> None:
        if self.log is not None:
            self.log.append(payload)

    def close(self) -> None:
        if self.log is not None:
            self.log.close()
        self.node.deregister_region(self.name)
