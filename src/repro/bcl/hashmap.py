"""BCL's distributed hash map, driven entirely from the client side.

The insert protocol is the one the paper's motivating example dissects
(Section II-B / Fig 1):

1. ``CAS`` the bucket's state word EMPTY -> RESERVED.  "If this reservation
   fails, the client will retry on the next bucket in sequence" (linear
   probing, *another remote CAS per probe*).
2. ``RDMA_WRITE`` the entry into the bucket.
3. ``CAS`` the state RESERVED -> READY.

A find reads the state+key with an ``RDMA_READ``, probing forward on key
mismatch — fewer atomics than insert, which is why BCL finds consistently
beat BCL inserts in Figs 5/6.

Static partitioning: each partition pre-allocates ``capacity`` buckets of a
*fixed* ``entry_size`` at construction (limitation (f)), charged at
``bcl_init_bandwidth`` over simulated time — the Fig 4(b) memory ramp.  Each
client additionally pins ``inflight_slots`` exclusive buffers of
``entry_size`` on the target node at first use — the source of the >1 MB
out-of-memory failures in Fig 5.

Functionally the map is real: entries live in the region's object plane and
finds return the actual stored values.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Optional

from repro.bcl.runtime import BCL
from repro.serialization.databox import estimate_size
from repro.simnet.core import Event
from repro.obs.registry import registry_of

__all__ = ["BCLHashMap"]

_MASK64 = (1 << 64) - 1
_GOLDEN64 = 0x9E3779B97F4A7C15

# Bucket state words
EMPTY, RESERVED, READY = 0, 1, 2

#: Bytes of bucket metadata co-located with each entry (state + key hash).
_BUCKET_HEADER = 16


class BCLHashMap:
    """Client-side CAS hash map with linear probing and static layout."""

    MAX_PROBES = 64

    def __init__(self, bcl: BCL, name: str, partitions: int,
                 capacity_per_partition: int, entry_size: int,
                 inflight_slots: int = 512,
                 max_probes: Optional[int] = None):
        if capacity_per_partition < 1:
            raise ValueError("capacity_per_partition must be positive")
        if max_probes is not None:
            self.MAX_PROBES = max_probes
        self.bcl = bcl
        self.cluster = bcl.cluster
        self.sim = bcl.sim
        self.name = name
        self.num_partitions = partitions
        self.capacity = capacity_per_partition
        self.entry_size = entry_size
        self.inflight_slots = inflight_slots
        self.ready = Event(self.sim)  # fires when the static init completes
        self._regions: Dict[int, str] = {}
        self._client_buffers: set = set()
        metrics = registry_of(self.sim)
        self.cas_retries = metrics.counter(f"{name}/cas_retries")
        self.inserts = metrics.counter(f"{name}/inserts")
        self.finds = metrics.counter(f"{name}/finds")
        self._partition_nodes = [
            i % self.cluster.num_nodes for i in range(partitions)
        ]
        self.sim.process(self._static_init(), name=f"bcl-init-{name}")

    # -- static initialization (the Fig 4b memory ramp) -----------------------
    def _static_init(self):
        """Allocate every partition up front, at init bandwidth."""
        chunk = 64 << 20  # allocate in 64 MiB steps so the ramp is visible
        for index, node_id in enumerate(self._partition_nodes):
            node = self.cluster.node(node_id)
            total = self.capacity * (self.entry_size + _BUCKET_HEADER)
            region_name = f"bcl.{self.name}.{index}"
            node.nic.register_region(region_name, total)
            self._regions[index] = region_name
            done = 0
            while done < total:
                step = min(chunk, total - done)
                self.bcl.allocate(node, step, what=f"{region_name} static")
                done += step
                yield self.sim.timeout(step / self.bcl.cost.bcl_init_bandwidth)
        self.ready.succeed(None)

    # -- addressing ---------------------------------------------------------------
    def _partition_of(self, key: Hashable) -> int:
        h = (hash(key) * _GOLDEN64) & _MASK64
        return (h >> 32) % self.num_partitions

    def _bucket_of(self, key: Hashable) -> int:
        return hash(key) % self.capacity

    def _slot_offset(self, bucket: int) -> int:
        return bucket * (self.entry_size + _BUCKET_HEADER)

    def _ensure_client_buffer(self, rank: int, target_node: int):
        """Pin this client's exclusive RDMA buffers on the target node."""
        key = (rank, target_node)
        if key in self._client_buffers:
            return
        self._client_buffers.add(key)
        node = self.cluster.node(target_node)
        nbytes = self.inflight_slots * self.entry_size
        self.bcl.allocate(node, nbytes, what=f"client {rank} RDMA buffers")

    # -- operations (generators run inside rank processes) -------------------------
    def insert(self, rank: int, key: Hashable, value: Any):
        """Client-side insert: CAS-reserve, write, CAS-ready.

        Returns True.  Raises :class:`~repro.bcl.runtime.BCLOutOfMemory` when
        buffers cannot be pinned, and ``RuntimeError`` when probing exhausts
        the static bucket array (no dynamic resize in this model —
        limitation (e)).
        """
        if not self.ready.triggered:
            yield self.ready
        part = self._partition_of(key)
        target = self._partition_nodes[part]
        self._ensure_client_buffer(rank, target)
        src_node = self.cluster.node_of_rank(rank)
        qp = self.cluster.qp(src_node)
        region = self._regions[part]
        region_obj = self.cluster.node(target).nic.region(region)
        bucket = self._bucket_of(key)
        size = max(estimate_size(key) + estimate_size(value), 1)
        for probe in range(self.MAX_PROBES):
            slot = (bucket + probe) % self.capacity
            off = self._slot_offset(slot)
            # 1. remote CAS: reserve the bucket.
            old = yield from qp.cas(target, region, off, EMPTY, RESERVED)
            if old == EMPTY:
                # 2. remote write of the entry payload.
                yield from qp.rdma_write(
                    target, region, off + 1, (key, value), size
                )
                # 3. remote CAS: publish.
                yield from qp.cas(target, region, off, RESERVED, READY)
                self.inserts.add(1)
                return True
            if old == READY:
                stored = region_obj.get_object(off + 1)
                if stored is not None and stored[0] == key:
                    # Same key: overwrite in place (write + re-publish).
                    yield from qp.rdma_write(
                        target, region, off + 1, (key, value), size
                    )
                    self.inserts.add(1)
                    return True
            # Bucket taken by someone else: retry on the next bucket.
            self.cas_retries.add(1)
        raise RuntimeError(
            f"BCL hashmap {self.name!r}: probe chain exhausted "
            f"({self.MAX_PROBES} buckets) — static partition too small"
        )

    def atomic_update(self, rank: int, key: Hashable, fn, initial):
        """Client-side atomic read-modify-write of one key.

        The only correct way to do this from the client side is to lock the
        bucket remotely: CAS the state READY -> RESERVED, RDMA_READ the
        entry, apply ``fn`` locally, RDMA_WRITE it back, CAS RESERVED ->
        READY — *five* remote operations per update, plus retries whenever
        another client holds the bucket.  (HCL does the same thing with a
        single ``upsert`` invocation.)

        Returns the new value.
        """
        if not self.ready.triggered:
            yield self.ready
        part = self._partition_of(key)
        target = self._partition_nodes[part]
        self._ensure_client_buffer(rank, target)
        src_node = self.cluster.node_of_rank(rank)
        qp = self.cluster.qp(src_node)
        region = self._regions[part]
        region_obj = self.cluster.node(target).nic.region(region)
        bucket = self._bucket_of(key)
        probe = 0
        while probe < self.MAX_PROBES:
            slot = (bucket + probe) % self.capacity
            off = self._slot_offset(slot)
            old = yield from qp.cas(target, region, off, EMPTY, RESERVED)
            if old == EMPTY:
                # Fresh entry.
                value = fn(initial)
                size = max(estimate_size(key) + estimate_size(value), 1)
                yield from qp.rdma_write(target, region, off + 1, (key, value), size)
                yield from qp.cas(target, region, off, RESERVED, READY)
                self.inserts.add(1)
                return value
            if old == READY:
                stored = region_obj.get_object(off + 1)
                if stored is None or stored[0] != key:
                    self.cas_retries.add(1)
                    probe += 1
                    continue
                # Lock the bucket for the read-modify-write.
                locked = yield from qp.cas(target, region, off, READY, RESERVED)
                if locked != READY:
                    self.cas_retries.add(1)
                    continue  # someone else holds it; retry same bucket
                entry = yield from qp.rdma_read(
                    target, region, off + 1,
                    max(estimate_size(region_obj.get_object(off + 1)), 16),
                )
                value = fn(entry[1])
                size = max(estimate_size(key) + estimate_size(value), 1)
                yield from qp.rdma_write(target, region, off + 1, (key, value), size)
                yield from qp.cas(target, region, off, RESERVED, READY)
                self.inserts.add(1)
                return value
            # RESERVED by another client: spin on the same bucket.
            self.cas_retries.add(1)
        raise RuntimeError(
            f"BCL hashmap {self.name!r}: probe chain exhausted in atomic_update"
        )

    # -- non-blocking operations + flush -------------------------------------
    # The asynchronicity BCL *does* offer comes with the obligation to
    # flush: "low write asynchronicity caused by the necessity of
    # performing a flush operation, which forces the callers to serialize
    # updates" (Section I, limitation b).
    def _async_qp(self, rank: int):
        from repro.fabric.cq import QueuePairAsync

        if not hasattr(self, "_aqps"):
            self._aqps = {}
        aqp = self._aqps.get(rank)
        if aqp is None:
            aqp = QueuePairAsync(self.cluster.qp(self.cluster.node_of_rank(rank)))
            self._aqps[rank] = aqp
        return aqp

    def insert_nb(self, rank: int, key: Hashable, value: Any):
        """Post an insert without waiting; pair with :meth:`flush`."""
        return self._async_qp(rank).post(self.insert(rank, key, value))

    def flush(self, rank: int):
        """Generator: wait for all of this rank's outstanding operations.

        Returns the completions; raises if any outstanding op failed.
        """
        completions = yield from self._async_qp(rank).flush()
        failed = [c for c in completions if not c.ok]
        if failed:
            raise RuntimeError(
                f"BCL flush: {len(failed)} operations failed "
                f"(first: {failed[0].error})"
            )
        return completions

    def find(self, rank: int, key: Hashable):
        """Client-side find: RDMA_READ state+entry, probing on mismatch.

        Returns ``(value, found)``.
        """
        if not self.ready.triggered:
            yield self.ready
        part = self._partition_of(key)
        target = self._partition_nodes[part]
        self._ensure_client_buffer(rank, target)
        src_node = self.cluster.node_of_rank(rank)
        qp = self.cluster.qp(src_node)
        region = self._regions[part]
        region_obj = self.cluster.node(target).nic.region(region)
        bucket = self._bucket_of(key)
        size = max(estimate_size(key), 16)
        for probe in range(self.MAX_PROBES):
            slot = (bucket + probe) % self.capacity
            off = self._slot_offset(slot)
            state = region_obj.read_word(off)
            if state == EMPTY:
                # One small read to discover the empty state.
                yield from qp.rdma_read(target, region, off, _BUCKET_HEADER)
                self.finds.add(1)
                return None, False
            # Read the full entry (state + payload travel together).
            stored = yield from qp.rdma_read(
                target, region, off + 1,
                size + estimate_size(region_obj.get_object(off + 1)),
            )
            if stored is not None and stored[0] == key:
                self.finds.add(1)
                return stored[1], True
        self.finds.add(1)
        return None, False

    # -- introspection -----------------------------------------------------------------
    def stored_items(self):
        """All (key, value) pairs physically present (test helper)."""
        for index in self._regions:
            node = self.cluster.node(self._partition_nodes[index])
            region = node.nic.region(self._regions[index])
            for off, obj in region.objects.items():
                if obj is not None and region.read_word(off - 1) == READY:
                    yield obj
