"""BCL baseline — the Berkeley Container Library's client-side model.

The comparison target of every experiment in the paper.  BCL's architecture
(Section II-B) is reproduced on the *same* simulated fabric HCL uses:

* **client-side programming** — every data-structure mutation is driven by
  the calling process with one-sided verbs; the target CPU (and NIC RPC
  path) is never involved;
* **CAS-based bucket protocol** — an insert is ``CAS(reserve)`` +
  ``RDMA_WRITE(data)`` + ``CAS(ready)``, with linear-probe retries on
  collision — three-plus remote round trips per op, serialized per memory
  region by the RDMA atomic engine;
* **static pre-allocated partitioning** (limitation (e)/(f)): partitions are
  sized up front for a fixed entry size, allocated at init time (the memory
  ramp of Fig 4b), bounded by the 60%-of-node-memory rule the paper reports;
* **exclusive per-client RDMA buffers**, which blow up with the operation
  size (the out-of-memory behaviour above 1 MB in Fig 5).

Implemented containers mirror those available in BCL: a hash map
(:class:`~repro.bcl.hashmap.BCLHashMap`) and a circular queue
(:class:`~repro.bcl.queue.BCLCircularQueue`) — "sets and ordered data
structures are not implemented within BCL" (Section IV-C).
"""

from repro.bcl.runtime import BCL, BCLOutOfMemory
from repro.bcl.hashmap import BCLHashMap
from repro.bcl.queue import BCLCircularQueue

__all__ = ["BCL", "BCLOutOfMemory", "BCLHashMap", "BCLCircularQueue"]
