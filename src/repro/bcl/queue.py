"""BCL's circular queue, driven from the client side.

Push: remote fetch-and-add claims a tail slot, an RDMA_WRITE deposits the
entry, and a CAS publishes the slot.  Pop: fetch-and-add claims a head
slot, the client polls the slot's state with reads until published, then
reads the entry and CASes the slot free.  Every operation is "multiple
client-side CAS operations on the remote memory (per each push and pop),
which incurs additional network cost" (Section IV-C) — the cause of BCL's
35K/43K op/s ceiling in Fig 6(c).

The ring is statically sized (``capacity`` entries of fixed ``entry_size``),
allocated at init like every BCL structure.
"""

from __future__ import annotations

from typing import Any

from repro.bcl.runtime import BCL
from repro.serialization.databox import estimate_size
from repro.simnet.core import Event
from repro.obs.registry import registry_of

__all__ = ["BCLCircularQueue"]

# Slot states
FREE, CLAIMED, PUBLISHED = 0, 1, 2

_HEAD_OFF = 0  # word offset of head counter
_TAIL_OFF = 8  # word offset of tail counter
_RING_BASE = 64  # slots start here

_SLOT_HEADER = 16


class BCLCircularQueue:
    """Client-side MPMC ring buffer."""

    def __init__(self, bcl: BCL, name: str, capacity: int, entry_size: int,
                 home_node: int = 0, inflight_slots: int = 512):
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.bcl = bcl
        self.cluster = bcl.cluster
        self.sim = bcl.sim
        self.name = name
        self.capacity = capacity
        self.entry_size = entry_size
        self.home_node = home_node
        self.inflight_slots = inflight_slots
        self.region_name = f"bcl.{name}.ring"
        self.ready = Event(self.sim)
        self._client_buffers: set = set()
        metrics = registry_of(self.sim)
        self.pushes = metrics.counter(f"{name}/pushes")
        self.pops = metrics.counter(f"{name}/pops")
        self.poll_retries = metrics.counter(f"{name}/poll_retries")
        self.sim.process(self._static_init(), name=f"bcl-init-{name}")

    def _static_init(self):
        node = self.cluster.node(self.home_node)
        total = _RING_BASE + self.capacity * (self.entry_size + _SLOT_HEADER)
        node.nic.register_region(self.region_name, total)
        chunk = 64 << 20
        done = 0
        while done < total:
            step = min(chunk, total - done)
            self.bcl.allocate(node, step, what=f"{self.region_name} static")
            done += step
            yield self.sim.timeout(step / self.bcl.cost.bcl_init_bandwidth)
        self.ready.succeed(None)

    def _slot_offset(self, index: int) -> int:
        return _RING_BASE + (index % self.capacity) * (
            self.entry_size + _SLOT_HEADER
        )

    def _ensure_client_buffer(self, rank: int):
        if rank in self._client_buffers:
            return
        self._client_buffers.add(rank)
        node = self.cluster.node(self.home_node)
        self.bcl.allocate(
            node, self.inflight_slots * self.entry_size,
            what=f"client {rank} queue buffers",
        )

    # -- operations ------------------------------------------------------------
    def push(self, rank: int, value: Any):
        """Claim tail slot (FAA) -> write entry -> CAS publish."""
        if not self.ready.triggered:
            yield self.ready
        self._ensure_client_buffer(rank)
        src = self.cluster.node_of_rank(rank)
        qp = self.cluster.qp(src)
        target = self.home_node
        region_obj = self.cluster.node(target).nic.region(self.region_name)
        # 1. remote fetch-and-add on the tail counter.
        ticket = yield from qp.fetch_add(target, self.region_name, _TAIL_OFF, 1)
        head = region_obj.read_word(_HEAD_OFF)
        if ticket - head >= self.capacity:
            raise RuntimeError(
                f"BCL queue {self.name!r} overflow (static ring of "
                f"{self.capacity} entries)"
            )
        off = self._slot_offset(ticket)
        size = max(estimate_size(value), 1)
        # 2. write the entry into the claimed slot.
        yield from qp.rdma_write(target, self.region_name, off + 1, value, size)
        # 3. CAS publish the slot.
        yield from qp.cas(target, self.region_name, off, FREE, PUBLISHED)
        self.pushes.add(1)
        return True

    # -- non-blocking + flush (same pattern as the hashmap) --------------------
    def _async_qp(self, rank: int):
        from repro.fabric.cq import QueuePairAsync

        if not hasattr(self, "_aqps"):
            self._aqps = {}
        aqp = self._aqps.get(rank)
        if aqp is None:
            aqp = QueuePairAsync(
                self.cluster.qp(self.cluster.node_of_rank(rank))
            )
            self._aqps[rank] = aqp
        return aqp

    def push_nb(self, rank: int, value: Any):
        """Post a push without waiting; pair with :meth:`flush`."""
        return self._async_qp(rank).post(self.push(rank, value))

    def flush(self, rank: int):
        """Generator: wait for this rank's outstanding pushes."""
        completions = yield from self._async_qp(rank).flush()
        failed = [c for c in completions if not c.ok]
        if failed:
            raise RuntimeError(
                f"BCL queue flush: {len(failed)} operations failed "
                f"(first: {failed[0].error})"
            )
        return completions

    def pop(self, rank: int):
        """Claim head slot (FAA) -> poll until published -> read -> CAS free.

        Returns ``(value, ok)``; ok is False when the queue is empty.
        """
        if not self.ready.triggered:
            yield self.ready
        self._ensure_client_buffer(rank)
        src = self.cluster.node_of_rank(rank)
        qp = self.cluster.qp(src)
        target = self.home_node
        region_obj = self.cluster.node(target).nic.region(self.region_name)
        tail = region_obj.read_word(_TAIL_OFF)
        head = region_obj.read_word(_HEAD_OFF)
        if head >= tail:
            # Empty check costs one small read of the counters.
            yield from qp.rdma_read(target, self.region_name, _HEAD_OFF, 16)
            return None, False
        # 1. claim the head slot.
        ticket = yield from qp.fetch_add(target, self.region_name, _HEAD_OFF, 1)
        if ticket >= region_obj.read_word(_TAIL_OFF):
            # Lost the race: hand the ticket back (another CAS round trip).
            yield from qp.fetch_add(target, self.region_name, _HEAD_OFF, -1)
            return None, False
        off = self._slot_offset(ticket)
        # 2. poll the slot state until the producer published it.
        for _ in range(64):
            state = yield from qp.rdma_read(
                target, self.region_name, off, _SLOT_HEADER
            )
            if region_obj.read_word(off) == PUBLISHED:
                break
            self.poll_retries.add(1)
        # 3. read the entry.
        value = yield from qp.rdma_read(
            target, self.region_name, off + 1,
            max(estimate_size(region_obj.get_object(off + 1)), 1),
        )
        # 4. CAS the slot back to free for ring reuse.
        yield from qp.cas(target, self.region_name, off, PUBLISHED, FREE)
        region_obj.put_object(off + 1, None)
        self.pops.add(1)
        return value, True
