"""BCL runtime: global memory windows, barriers, and the 60% memory rule.

BCL processes "expose a memory segment into the global shared memory window
and agree on its management via global pointers" — so everything is
allocated up front, at init, with clients agreeing on a static layout.
"""

from __future__ import annotations

from typing import Dict, Optional, Union

from repro.config import ClusterSpec
from repro.fabric.node import Node, OutOfMemoryError
from repro.fabric.topology import Cluster
from repro.simnet.sync import Barrier

__all__ = ["BCL", "BCLOutOfMemory"]


class BCLOutOfMemory(OutOfMemoryError):
    """BCL exceeded its share of node memory (the paper's 60% rule)."""


class BCL:
    """Top-level BCL environment over a (possibly shared) simulated cluster."""

    #: "the overall capacity allocated to BCL should not exceed 60% of the
    #: total node memory to ensure successful completion" (Section IV-B2).
    MEMORY_FRACTION = 0.6

    def __init__(self, spec_or_cluster: Union[ClusterSpec, Cluster],
                 provider: str = "roce"):
        if isinstance(spec_or_cluster, Cluster):
            self.cluster = spec_or_cluster
        else:
            self.cluster = Cluster(spec_or_cluster, provider=provider)
        if not self.cluster.provider.supports_rdma_atomics:
            # "At its core, BCL requires the support of remote memory
            # operations and atomics (CAS) from the network hardware ...
            # Without CAS support, BCL structures cannot be implemented."
            raise RuntimeError(
                f"BCL requires RDMA atomics; provider "
                f"{self.cluster.provider.name!r} does not offer them "
                "(HCL runs on any OFI provider — Section II-B vs III)"
            )
        self.sim = self.cluster.sim
        self.cost = self.cluster.spec.cost
        self._bcl_bytes: Dict[int, int] = {n.node_id: 0 for n in self.cluster.nodes}
        self._barrier: Optional[Barrier] = None
        self.containers: Dict[str, object] = {}

    # -- memory under the 60% rule -------------------------------------------
    def allocate(self, node: Node, nbytes: int, what: str = "") -> None:
        budget = int(self.MEMORY_FRACTION * node.memory_capacity)
        if self._bcl_bytes[node.node_id] + nbytes > budget:
            raise BCLOutOfMemory(
                f"BCL allocation of {nbytes} bytes for {what or 'buffer'} "
                f"exceeds 60% budget on node {node.node_id} "
                f"({self._bcl_bytes[node.node_id]}/{budget} used)"
            )
        node.allocate(nbytes, what=what)
        self._bcl_bytes[node.node_id] += nbytes

    def bcl_bytes(self, node_id: int) -> int:
        return self._bcl_bytes[node_id]

    # -- collectives ------------------------------------------------------------
    def barrier(self) -> Barrier:
        """The all-ranks barrier BCL's bulk-synchronous phases need."""
        if self._barrier is None or self._barrier.parties != self.cluster.total_procs:
            self._barrier = Barrier(self.sim, self.cluster.total_procs)
        return self._barrier

    # -- container factories -------------------------------------------------------
    def hashmap(self, name: str, capacity_per_partition: int,
                entry_size: int, partitions: Optional[int] = None,
                inflight_slots: int = 512,
                max_probes: Optional[int] = None):
        from repro.bcl.hashmap import BCLHashMap

        if name in self.containers:
            raise KeyError(f"container {name!r} already exists")
        container = BCLHashMap(
            self, name,
            partitions=partitions if partitions is not None else self.cluster.num_nodes,
            capacity_per_partition=capacity_per_partition,
            entry_size=entry_size,
            inflight_slots=inflight_slots,
            max_probes=max_probes,
        )
        self.containers[name] = container
        return container

    def queue(self, name: str, capacity: int, entry_size: int,
              home_node: int = 0, inflight_slots: int = 512):
        from repro.bcl.queue import BCLCircularQueue

        if name in self.containers:
            raise KeyError(f"container {name!r} already exists")
        container = BCLCircularQueue(
            self, name, capacity=capacity, entry_size=entry_size,
            home_node=home_node, inflight_slots=inflight_slots,
        )
        self.containers[name] = container
        return container
