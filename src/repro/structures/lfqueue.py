"""Optimistic FIFO queue after Ladan-Mozes & Shavit (DISC'04).

HCL's ``HCL::queue`` "uses a state-of-the-art algorithm that maintains a
list of pointers to allow concurrent lock-free operations [32].  During a
push() operation, a new node is added to the list at the current tail by a
CAS increment on the tail list position ... a background asynchronous
fix-list operation consolidates all the elements based on arrival time"
(Section III-D3).

The optimistic queue is a doubly-linked list where enqueue CASes the tail
and *optimistically* writes the new node's ``prev`` pointer without
synchronization; dequeue walks ``prev`` pointers from the tail-anchored
chain, and when it finds them inconsistent (because an enqueuer was
interrupted between the tail CAS and the prev write) it runs ``fix_list`` —
a repair pass that rebuilds prev pointers from the authoritative ``next``
chain.  We reproduce that structure faithfully, including the fix-list pass
and its operation count, with a lock standing in for each CAS (and counted
as one ``cas_ops``).

To exercise the fix-list machinery deterministically, ``enqueue`` accepts
``defer_prev=True`` which simulates an enqueuer stalled before publishing
its prev pointer.
"""

from __future__ import annotations

import threading
from typing import Any, Iterator, Optional, Tuple

from repro.structures.stats import OpStats

__all__ = ["OptimisticQueue", "QueueEmpty"]


class QueueEmpty(Exception):
    """pop() on an empty queue."""


class _QNode:
    __slots__ = ("value", "next", "prev", "stamp")

    def __init__(self, value, stamp):
        self.value = value
        self.next: Optional[_QNode] = None  # toward head (older)
        self.prev: Optional[_QNode] = None  # toward tail (newer)
        self.stamp = stamp  # arrival order, drives fix-list consolidation


class OptimisticQueue:
    """MWMR FIFO with optimistic prev-pointers and a fix-list repair pass."""

    def __init__(self):
        dummy = _QNode(None, 0)
        self._head = dummy  # dequeue side
        self._tail = dummy  # enqueue side
        self._count = 0
        self._stamp = 0
        self._lock = threading.Lock()
        self.fixups_total = 0

    def __len__(self) -> int:
        return self._count

    @property
    def empty(self) -> bool:
        return self._count == 0

    # -- enqueue -----------------------------------------------------------------
    def push(self, value: Any, defer_prev: bool = False) -> OpStats:
        """Append at the tail.  One CAS on the tail + one node write."""
        stats = OpStats()
        with self._lock:
            self._stamp += 1
            node = _QNode(value, self._stamp)
            stats.writes += 1
            stats.cas_ops += 1  # the tail CAS
            old_tail = self._tail
            node.next = old_tail
            self._tail = node
            if not defer_prev:
                # Optimistic, uns-synchronized prev publication.
                old_tail.prev = node
                stats.local_ops += 1
            self._count += 1
        return stats

    def push_many(self, values) -> OpStats:
        """Vector push (Table I: F + L + E*W)."""
        stats = OpStats()
        for v in values:
            stats = stats.merge(self.push(v))
        return stats

    # -- dequeue ------------------------------------------------------------------
    def pop(self) -> Tuple[Any, OpStats]:
        """Remove from the head.  Runs fix-list when prev chain is broken."""
        stats = OpStats()
        with self._lock:
            if self._count == 0:
                raise QueueEmpty()
            head = self._head
            first = head.prev  # the oldest real node
            if first is None:
                self._fix_list(stats)
                first = head.prev
            if first is None:
                raise QueueEmpty()  # pragma: no cover - repaired above
            stats.cas_ops += 1  # the head CAS
            stats.reads += 1
            value = first.value
            first.value = None
            self._head = first
            self._count -= 1
            if self._count == 0:
                # List empty: head and tail converge on the new dummy.
                self._tail = first
                first.prev = None
            return value, stats

    def pop_many(self, n: int):
        """Vector pop of up to ``n`` elements (Table I: F + L + E*R)."""
        stats = OpStats()
        out = []
        for _ in range(n):
            if self.empty:
                break
            v, s = self.pop()
            out.append(v)
            stats = stats.merge(s)
        return out, stats

    def _fix_list(self, stats: OpStats) -> None:
        """Rebuild prev pointers tail -> head from the authoritative next chain,
        consolidating by arrival stamp (the paper's background fix-list)."""
        node = self._tail
        while node is not self._head:
            nxt = node.next
            if nxt is None:
                break
            nxt.prev = node
            stats.relocations += 1
            node = nxt
        self.fixups_total += 1

    # -- introspection -----------------------------------------------------------
    def snapshot(self) -> Iterator[Any]:
        """Oldest-to-newest values (repairs nothing; follows next chain)."""
        chain = []
        node = self._tail
        while node is not None:
            if node.value is not None or node is not self._head:
                chain.append(node)
            node = node.next
        for n in reversed(chain):
            if n.value is not None:
                yield n.value

    def check_invariants(self) -> None:
        vals = list(self.snapshot())
        assert len(vals) == self._count, f"{len(vals)} != {self._count}"
        node = self._tail
        stamps = []
        while node is not None and node.value is not None:
            stamps.append(node.stamp)
            node = node.next
        assert stamps == sorted(stamps, reverse=True), "stamp order broken"
