"""Local concurrent data structures — the building blocks of HCL containers.

HCL builds each distributed container on a published lock-free local
structure (Section III-D); we implement the same algorithms:

* :mod:`repro.structures.cuckoo` — lock-free cuckoo hashing
  (Nguyen & Tsigas, ICDCS'14 [30]): two tables, two hash functions,
  relocation chains, used by ``unordered_map`` / ``unordered_set``.
* :mod:`repro.structures.rbtree` — red-black tree with rotation accounting
  (after Natarajan, Savoie & Mittal's concurrent wait-free RBTs [31]),
  used by ``map`` / ``set``.
* :mod:`repro.structures.lfqueue` — optimistic doubly-linked FIFO with the
  fix-list repair pass (Ladan-Mozes & Shavit, DISC'04 [32]), used by
  ``queue``.
* :mod:`repro.structures.mdlist` — multi-dimensional linked-list priority
  queue with logically-deleted-node purging (Zhang & Dechev, TPDS'15 [33]),
  used by ``priority_queue``.

Every mutating operation returns an :class:`OpStats` describing the work it
did (probes, relocations, rotations, hops...).  The container layer converts
those counts into simulated time using the Table I cost symbols, so the
simulated performance tracks the *actual* algorithmic work performed on the
real data.

Python cannot express true lock-free CAS loops on shared memory, so thread
safety comes from fine-grained internal locks that preserve each algorithm's
conflict behaviour (see DESIGN.md, "Deviations").
"""

from repro.structures.stats import OpStats
from repro.structures.cuckoo import CuckooHash
from repro.structures.rbtree import RedBlackTree
from repro.structures.lfqueue import OptimisticQueue
from repro.structures.mdlist import MDListPriorityQueue

__all__ = [
    "OpStats",
    "CuckooHash",
    "RedBlackTree",
    "OptimisticQueue",
    "MDListPriorityQueue",
]
