"""Multi-dimensional linked-list priority queue after Zhang & Dechev (TPDS'15).

HCL's ``HCL::priority_queue`` uses "a lock-free implementation based on a
multi-dimensional linked list [33] ... a background purge methodology to
clean up logically invalidated nodes" (Section III-D3).

The MDList maps each priority to a **D-dimensional coordinate vector** (a
base-:math:`N` decomposition of the key), arranging nodes into an ordered
D-dimensional grid: a node's children array has one slot per dimension, and
coordinate order equals priority order.  Operations:

* ``push`` — compute the coordinate, descend dimension-by-dimension to the
  predecessor, splice the new node in (one CAS at the attach point).  Cost
  is O(D + N^(1/D)) hops — logarithmic-ish, matching Table I's
  ``L·log(N) + W`` for push.
* ``pop_min`` — the minimum is the leftmost path; nodes are *logically*
  deleted (marked) and a **purge pass** physically unlinks batches of
  marked nodes when their count passes a threshold, exactly the paper's
  background-purge behaviour.  Stats expose hops and purged counts.

Duplicate priorities are allowed (each node carries a FIFO list of values,
resolving "conflicts based on arrival time and priority").
"""

from __future__ import annotations

import threading
from typing import Any, Iterator, List, Optional, Tuple

from repro.structures.stats import OpStats

__all__ = ["MDListPriorityQueue", "PriorityQueueEmpty"]


class PriorityQueueEmpty(Exception):
    """pop on an empty priority queue."""


class _MNode:
    __slots__ = ("key", "coord", "values", "children", "marked")

    def __init__(self, key: int, coord: Tuple[int, ...], dims: int):
        self.key = key
        self.coord = coord
        self.values: List[Any] = []  # FIFO among equal priorities
        self.children: List[Optional[_MNode]] = [None] * dims
        self.marked = False


class MDListPriorityQueue:
    """Min-priority queue over integer priorities (lower pops first).

    ``dims`` and ``base`` set the coordinate space: priorities must fit in
    ``base ** dims``.  The default (8 dims, base 16) covers 32-bit
    priorities with at most ``8 + 16`` hops per operation.
    """

    PURGE_THRESHOLD = 64

    def __init__(self, dims: int = 8, base: int = 16):
        if dims < 1 or base < 2:
            raise ValueError("dims must be >= 1 and base >= 2")
        self.dims = dims
        self.base = base
        self.key_limit = base ** dims
        head_coord = tuple([-1] * dims)  # strictly below every real coordinate
        self._head = _MNode(-1, head_coord, dims)  # sentinel below all keys
        self._head.marked = True
        self._count = 0
        self._marked_count = 0
        self._stamp = 0
        self._lock = threading.Lock()
        self.purges_total = 0

    def __len__(self) -> int:
        return self._count

    @classmethod
    def for_key_space(cls, max_key: int, base: int = 16) -> "MDListPriorityQueue":
        """Build a queue whose coordinate space covers ``[0, max_key]``."""
        if max_key < 0:
            raise ValueError("max_key must be non-negative")
        dims = 1
        while base ** dims <= max_key:
            dims += 1
        return cls(dims=dims, base=base)

    @property
    def empty(self) -> bool:
        return self._count == 0

    # -- coordinates ------------------------------------------------------------
    def coordinate(self, key: int) -> Tuple[int, ...]:
        """Base-N decomposition, most-significant dimension first."""
        if not 0 <= key < self.key_limit:
            raise ValueError(
                f"priority {key} outside [0, {self.key_limit}) for "
                f"dims={self.dims}, base={self.base}"
            )
        coord = []
        for d in range(self.dims - 1, -1, -1):
            coord.append((key // (self.base ** d)) % self.base)
        return tuple(coord)

    # -- push -----------------------------------------------------------------------
    def push(self, key: int, value: Any) -> OpStats:
        stats = OpStats()
        coord = self.coordinate(key)
        with self._lock:
            node, parent, dim, adopt_dim, hops = self._locate(coord)
            stats.local_ops += hops
            if node is not None:
                # Same priority: append in arrival order.
                node.values.append(value)
                if node.marked:
                    node.marked = False
                    self._marked_count -= 1
                stats.writes += 1
                stats.cas_ops += 1
            else:
                fresh = _MNode(key, coord, self.dims)
                fresh.values.append(value)
                self._splice(fresh, parent, dim, adopt_dim)
                stats.writes += 1
                stats.cas_ops += 1  # the attach-point CAS
            self._count += 1
        return stats

    def _splice(self, fresh: _MNode, pred: _MNode, pred_dim: int,
                adopt_dim: int) -> None:
        """Install ``fresh`` at ``pred.children[pred_dim]``.

        The displaced occupant (if any) is pushed down to
        ``fresh.children[adopt_dim]``, and — the *child adoption* step of
        the Zhang-Dechev algorithm — its children in dimensions
        ``[pred_dim, adopt_dim)`` are transferred to ``fresh``, because a
        node attached at dimension ``adopt_dim`` may only keep children in
        dimensions >= ``adopt_dim``.
        """
        curr = pred.children[pred_dim]
        if curr is not None:
            for j in range(pred_dim, adopt_dim):
                fresh.children[j] = curr.children[j]
                curr.children[j] = None
            fresh.children[adopt_dim] = curr
        pred.children[pred_dim] = fresh

    def _locate(self, coord: Tuple[int, ...]):
        """The Zhang-Dechev predecessor search.

        Returns ``(exact_node_or_None, pred, pred_dim, adopt_dim, hops)``:
        a new node for ``coord`` belongs in ``pred.children[pred_dim]``
        (the slot ``curr`` currently occupies), adopting the displaced
        ``curr`` at dimension ``adopt_dim``.

        The walk advances one dimension at a time: while the key exceeds
        the current node in dimension ``d``, follow ``children[d]``; on a
        tie, *stay on the node* and move to dimension ``d+1`` (the node's
        higher-dimension children cover keys sharing its coordinate
        prefix); when the key is smaller, the insertion point is found.
        """
        pred = self._head
        pred_dim = 0
        curr: Optional[_MNode] = self._head
        d = 0
        hops = 0
        while d < self.dims:
            while curr is not None and coord[d] > curr.coord[d]:
                pred, pred_dim = curr, d
                curr = curr.children[d]
                hops += 1
            if curr is None or coord[d] < curr.coord[d]:
                return None, pred, pred_dim, d, hops
            d += 1  # equal in dimension d: descend a dimension in place
        return curr, pred, pred_dim, self.dims - 1, hops

    # -- pop ---------------------------------------------------------------------------
    def pop_min(self) -> Tuple[int, Any, OpStats]:
        """Remove and return ``(priority, value)`` of the minimum."""
        stats = OpStats()
        with self._lock:
            if self._count == 0:
                raise PriorityQueueEmpty()
            node, hops = self._find_min()
            stats.local_ops += hops
            if node is None:  # pragma: no cover - count said otherwise
                raise PriorityQueueEmpty()
            stats.reads += 1
            stats.cas_ops += 1  # the deletion mark
            value = node.values.pop(0)
            self._count -= 1
            if not node.values:
                node.marked = True
                self._marked_count += 1
                if self._marked_count >= self.PURGE_THRESHOLD:
                    stats.relocations += self._purge()
            return node.key, value, stats

    def peek_min(self) -> Tuple[int, Any]:
        with self._lock:
            if self._count == 0:
                raise PriorityQueueEmpty()
            node, _hops = self._find_min()
            return node.key, node.values[0]

    def _preorder(self) -> Iterator[_MNode]:
        """Nodes in *sorted key order*.

        Pre-order with children visited from the highest dimension down
        enumerates coordinates lexicographically: a node precedes all its
        children, the dimension-``d`` child subtree precedes the
        dimension-``d-1`` one.
        """
        stack = [self._head]
        while stack:
            node = stack.pop()
            if node is not self._head:
                yield node
            # Push dim 0 first so the highest dimension pops (visits) first.
            for child in node.children:
                if child is not None:
                    stack.append(child)

    def _find_min(self) -> Tuple[Optional[_MNode], int]:
        """First unmarked node in sorted order — skips logically-deleted
        nodes, whose accumulation the purge pass bounds."""
        hops = 0
        for node in self._preorder():
            hops += 1
            if not node.marked:
                return node, hops
        return None, hops

    def _purge(self) -> int:
        """Physically unlink marked nodes (the background purge pass).

        Rebuilds the structure from live nodes — O(N) like a real purge's
        amortized compaction; returns number of nodes removed.
        """
        live: List[Tuple[int, List[Any]]] = []
        removed = 0
        for node in self._preorder():
            if node.marked:
                removed += 1
            else:
                live.append((node.key, node.values))
        self._head.children = [None] * self.dims
        self._marked_count = 0
        self.purges_total += 1
        # Re-splice live nodes; sorted order makes every insert O(dims).
        for key, values in live:
            coord = self.coordinate(key)
            _node, pred, pred_dim, adopt_dim, _h = self._locate(coord)
            fresh = _MNode(key, coord, self.dims)
            fresh.values = values
            self._splice(fresh, pred, pred_dim, adopt_dim)
        return removed

    # -- introspection ----------------------------------------------------------------
    def items(self) -> Iterator[Tuple[int, Any]]:
        """All live (priority, value) pairs, in priority order."""
        for node in self._preorder():
            if not node.marked:
                for v in node.values:
                    yield node.key, v

    def check_invariants(self) -> None:
        seen = 0
        last_key = -1
        for node in self._preorder():
            assert self.coordinate(node.key) == node.coord, "coord mismatch"
            assert node.key > last_key, (
                f"preorder not sorted: {node.key} after {last_key}"
            )
            last_key = node.key
            if not node.marked:
                seen += len(node.values)
        assert seen == self._count, f"live values {seen} != count {self._count}"

        # Structural: every child is adopted at its first-diff dimension.
        stack = [self._head]
        while stack:
            node = stack.pop()
            for d, child in enumerate(node.children):
                if child is None:
                    continue
                stack.append(child)
                if node is self._head:
                    continue
                assert child.coord[:d] == node.coord[:d], "prefix broken"
                assert child.coord[d] > node.coord[d], "order broken"
