"""Cuckoo hash table after Nguyen & Tsigas (lock-free cuckoo hashing).

Two tables, two independent hash functions.  An insert tries its primary
slot, then its secondary; if both are taken it evicts ("kicks") the primary
occupant along a relocation chain up to ``MAX_RELOCATIONS``, after which the
table resizes (doubles) and rehashes — matching Section III-D1: buckets are
"a single logically contiguous array ... collisions resolved by the
secondary bucket mechanism", default 128 buckets, load factor 0.75, doubling
growth.

Per-operation :class:`~repro.structures.stats.OpStats` expose probes,
relocations and resizes so the simulation charges exactly the work done.

Thread safety: a striped lock array (power-of-two stripes) guards slot
mutations; lookups are lock-free in the Python sense (a consistent snapshot
read of one list cell).  The conflict pattern — writers to the same stripe
serialize, disjoint stripes proceed in parallel — mirrors the lock-free
algorithm's CAS contention behaviour.
"""

from __future__ import annotations

import threading
from typing import Any, Hashable, Iterator, List, Optional, Tuple

from repro.structures.stats import OpStats

__all__ = ["CuckooHash"]

_EMPTY = None
_GOLDEN64 = 0x9E3779B97F4A7C15
_MASK64 = (1 << 64) - 1

# Preallocated charge profiles for the two upsert hit paths — the
# overwhelming majority of an upsert storm, where per-op dataclass
# construction is measurable wall time.  Callers only ever *read* an
# OpStats once a structure op has returned it (accumulation goes through
# merge/absorb into a separate object), which is what makes sharing safe;
# never mutate one of these.
_UPSERT_HIT_T0 = OpStats(local_ops=3, reads=2, writes=1, cas_ops=1)
_UPSERT_HIT_T1 = OpStats(local_ops=6, reads=2, writes=1, cas_ops=1)


def _hash1(key: Hashable) -> int:
    return hash(key) & _MASK64


def _hash2(key: Hashable) -> int:
    h = hash(key) & _MASK64
    # Fibonacci scramble + xor-shift for an independent second hash.
    h = (h * _GOLDEN64) & _MASK64
    h ^= h >> 29
    return h


class CuckooHash:
    """A resizable two-table cuckoo hash map.

    ``hash_fn`` overrides the key distribution (the std::hash override of
    Section III-D1).
    """

    DEFAULT_BUCKETS = 128
    LOAD_FACTOR = 0.75
    MAX_RELOCATIONS = 16
    LOCK_STRIPES = 64

    def __init__(self, initial_buckets: int = DEFAULT_BUCKETS, hash_fn=None):
        if initial_buckets < 2:
            raise ValueError("need at least 2 buckets")
        half = max(1, initial_buckets // 2)
        self._cap = half  # per-table capacity; total buckets = 2 * cap
        self._t0: List[Optional[Tuple[Hashable, Any]]] = [_EMPTY] * half
        self._t1: List[Optional[Tuple[Hashable, Any]]] = [_EMPTY] * half
        self._count = 0
        self._hash_fn = hash_fn
        # Cap-independent hash bases memoized per key: a custom hash_fn
        # (e.g. the containers' stable_hash) costs real host time per call
        # and upsert storms rehash the same keys constantly.  Purely a
        # host-side cache — charged OpStats never count hashing.
        self._base_memo: Optional[dict] = {} if hash_fn is not None else None
        self._locks = [threading.Lock() for _ in range(self.LOCK_STRIPES)]
        self._resize_lock = threading.Lock()
        self._orphan: Optional[Tuple[Hashable, Any]] = None
        self.resizes = 0

    # -- hashing ---------------------------------------------------------------
    def _base(self, key: Hashable) -> int:
        """Memoized ``hash_fn(key) & MASK`` (cap-independent, resize-safe)."""
        memo = self._base_memo
        base = memo.get(key)
        if base is None:
            base = memo[key] = self._hash_fn(key) & _MASK64
        return base

    def _h(self, key: Hashable, table: int) -> int:
        if self._base_memo is not None:
            base = self._base(key)
            h = base if table == 0 else ((base * _GOLDEN64) & _MASK64) ^ (base >> 31)
        else:
            h = _hash1(key) if table == 0 else _hash2(key)
        return h % self._cap

    def _stripe(self, table: int, index: int) -> threading.Lock:
        return self._locks[(table * 31 + index) & (self.LOCK_STRIPES - 1)]

    # -- public API -------------------------------------------------------------
    def __len__(self) -> int:
        return self._count

    @property
    def bucket_count(self) -> int:
        return 2 * self._cap

    @property
    def load_factor(self) -> float:
        return self._count / self.bucket_count

    def find(self, key: Hashable) -> Tuple[Optional[Any], bool, OpStats]:
        """Returns ``(value, found, stats)``; at most two probes.

        Probes compare the slot key (a pointer-sized ``local_op``); only a
        hit reads the entry payload (one ``R``) — so the charged cost
        tracks bytes actually moved.
        """
        stats = OpStats()
        for table, arr in ((0, self._t0), (1, self._t1)):
            stats.local_ops += 1
            slot = arr[self._h(key, table)]
            if slot is not _EMPTY and slot[0] == key:
                stats.reads += 1
                return slot[1], True, stats
        return None, False, stats

    def contains(self, key: Hashable) -> Tuple[bool, OpStats]:
        _v, found, stats = self.find(key)
        return found, stats

    def upsert(self, key: Hashable, delta: Any) -> Tuple[Any, OpStats]:
        """Fused read-modify-write: add ``delta`` to the stored value (0 when
        absent) and return ``(new_value, stats)``.

        The charged :class:`OpStats` are exactly those of a ``find(key)``
        followed by ``insert(key, new_value)`` — the fusion only avoids the
        redundant host-side hashing and probing of the two-call sequence,
        never simulated work, so timelines are bit-identical either way.
        """
        cap = self._cap
        if self._base_memo is not None:
            base = self._base(key)
            i0 = base % cap
            i1 = ((((base * _GOLDEN64) & _MASK64) ^ (base >> 31))) % cap
        else:
            i0 = _hash1(key) % cap
            i1 = _hash2(key) % cap
        t0, t1 = self._t0, self._t1
        slot = t0[i0]
        if slot is not _EMPTY and slot[0] == key:
            # find: t0 hit (L1 R1); insert's find: t0 hit (L1 R1);
            # overwrite probe: t0 hit (L1 CAS1 W1).
            new = slot[1] + delta
            t0[i0] = (key, new)
            return new, _UPSERT_HIT_T0
        slot = t1[i1]
        if slot is not _EMPTY and slot[0] == key:
            # find: t0 miss, t1 hit (L2 R1); insert's find: same;
            # overwrite probes t0 then t1 (L2 CAS1 W1).
            new = slot[1] + delta
            t1[i1] = (key, new)
            return new, _UPSERT_HIT_T1
        # Absent.  Empty-slot placement inline: find miss (L2) + insert's
        # find miss (L2) + overwrite probes (L2), then one CAS+W into the
        # first free slot — the same charges ``_try_insert`` accrues.
        if t0[i0] is _EMPTY:
            t0[i0] = (key, delta)
        elif t1[i1] is _EMPTY:
            t1[i1] = (key, delta)
        else:
            # Both slots taken by other keys: kick chains and resizes stay
            # on the real insert path (mirroring only the find miss, L2).
            _new, stats = self.insert(key, delta)
            stats.local_ops += 2
            return delta, stats
        stats = OpStats(local_ops=6, writes=1, cas_ops=1)
        self._count += 1
        if self._count / (2 * cap) > self.LOAD_FACTOR:
            self._resize(stats)
        return delta, stats

    def insert(self, key: Hashable, value: Any) -> Tuple[bool, OpStats]:
        """Insert or overwrite.  Returns ``(inserted_new, stats)``.

        ``inserted_new`` reflects whether the key was absent before the call
        (kept accurate even across a mid-operation resize, where the resize
        re-count already includes the key placed by a failed kick chain).
        """
        _v, was_present, stats = self.find(key)
        while True:
            done, new = self._try_insert(key, value, stats)
            if done:
                if new:
                    self._count += 1
                if self._count / (2 * self._cap) > self.LOAD_FACTOR:
                    self._resize(stats)
                return not was_present, stats
            # Relocation chain exhausted: grow and retry.
            self._resize(stats)

    def _try_insert(self, key, value, stats: OpStats):
        """One attempt; returns (done, inserted_new)."""
        # Overwrite path: key already present in either table.
        for table, arr in ((0, self._t0), (1, self._t1)):
            i = self._h(key, table)
            stats.local_ops += 1
            slot = arr[i]
            if slot is not _EMPTY and slot[0] == key:
                with self._stripe(table, i):
                    stats.cas_ops += 1
                    stats.writes += 1
                    arr[i] = (key, value)
                return True, False
        # Empty-slot path.
        for table, arr in ((0, self._t0), (1, self._t1)):
            i = self._h(key, table)
            if arr[i] is _EMPTY:
                with self._stripe(table, i):
                    if arr[i] is _EMPTY:  # re-check under lock (CAS retry)
                        stats.cas_ops += 1
                        stats.writes += 1
                        arr[i] = (key, value)
                        return True, True
                    stats.cas_ops += 1  # failed CAS
        # Eviction chain: kick the primary occupant.
        cur = (key, value)
        table = 0
        for _ in range(self.MAX_RELOCATIONS):
            arr = self._t0 if table == 0 else self._t1
            i = self._h(cur[0], table)
            with self._stripe(table, i):
                victim = arr[i]
                stats.cas_ops += 1
                stats.writes += 1
                stats.relocations += 1
                arr[i] = cur
            if victim is _EMPTY:
                return True, True
            # Note: victim[0] == key can only mean the chain cycled back and
            # kicked out our own fresh copy (the overwrite path above already
            # handled genuinely-present keys), so keep relocating it — the
            # MAX_RELOCATIONS bound turns a true cycle into a resize.
            cur = victim
            table ^= 1
        # Chain too long: put the orphan back via resize path.
        self._orphan = cur
        return False, False

    def _resize(self, stats: OpStats) -> None:
        with self._resize_lock:
            old_items = list(self.items())
            orphan = getattr(self, "_orphan", None)
            self._orphan = None
            if orphan is not None:
                old_items.append(orphan)
            self.resizes += 1
            stats.resized = True
            stats.resize_entries += len(old_items)
            sub = OpStats()
            while True:
                if self._cap > 512 * max(16, len(old_items)):
                    # A hash function that cannot spread keys (e.g. a
                    # constant) makes cuckoo insertion impossible at any
                    # capacity; fail loudly instead of doubling forever.
                    raise RuntimeError(
                        f"cuckoo resize cannot place {len(old_items)} items "
                        f"even at capacity {self._cap} — degenerate hash "
                        "function?"
                    )
                self._cap *= 2
                self._t0 = [_EMPTY] * self._cap
                self._t1 = [_EMPTY] * self._cap
                self._count = 0
                ok = True
                for k, v in old_items:
                    done, new = self._try_insert(k, v, sub)
                    if not done:
                        self._orphan = None
                        ok = False
                        break
                    if new:
                        self._count += 1
                if ok:
                    return

    def remove(self, key: Hashable) -> Tuple[bool, OpStats]:
        stats = OpStats()
        for table, arr in ((0, self._t0), (1, self._t1)):
            i = self._h(key, table)
            stats.local_ops += 1
            slot = arr[i]
            if slot is not _EMPTY and slot[0] == key:
                with self._stripe(table, i):
                    if arr[i] is slot:
                        stats.cas_ops += 1
                        stats.writes += 1
                        arr[i] = _EMPTY
                        self._count -= 1
                        return True, stats
        return False, stats

    def items(self) -> Iterator[Tuple[Hashable, Any]]:
        for arr in (self._t0, self._t1):
            for slot in arr:
                if slot is not _EMPTY:
                    yield slot

    def keys(self) -> Iterator[Hashable]:
        for k, _v in self.items():
            yield k

    def check_invariants(self) -> None:
        """Every key sits at one of its two hash slots; count matches."""
        seen = 0
        for table, arr in ((0, self._t0), (1, self._t1)):
            for i, slot in enumerate(arr):
                if slot is _EMPTY:
                    continue
                seen += 1
                k = slot[0]
                assert self._h(k, table) == i, (
                    f"key {k!r} in table {table} slot {i}, "
                    f"expected {self._h(k, table)}"
                )
        assert seen == self._count, f"count {self._count} != occupied {seen}"
