"""Red-black tree with rotation/depth accounting.

HCL's ordered containers use "a lock-free red-black tree [31] algorithm ...
due to its ability to support high concurrency and asynchronous conflict
resolution (via its Node Lock Protocol (NLP) framework)" (Section III-D2).

We implement a classic red-black tree (insert, find, delete, in-order and
range iteration) with:

* per-operation :class:`~repro.structures.stats.OpStats` — ``local_ops``
  counts node visits (the ``log N`` of Table I), ``relocations`` counts
  rotations, so the simulated cost is exactly the work done;
* a coarse tree lock standing in for the NLP node-lock protocol: writers
  serialize, readers take a snapshot-consistent path (Python's GIL makes
  pointer reads atomic) — conflict behaviour at the container layer matches
  because the *simulated* concurrency happens in the DES, where op costs
  interleave, and the real tree only needs to be linearizable.
* conflict handling via per-key overwrite plus a bounded collision list for
  duplicate insertions, mirroring the paper's "linked list ... O(m + log n)"
  description.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Hashable, Iterator, Optional, Tuple

from repro.structures.stats import OpStats

__all__ = ["RedBlackTree"]

RED = True
BLACK = False


class _Node:
    __slots__ = ("key", "value", "left", "right", "parent", "color")

    def __init__(self, key, value, parent=None):
        self.key = key
        self.value = value
        self.left: Optional[_Node] = None
        self.right: Optional[_Node] = None
        self.parent: Optional[_Node] = parent
        self.color = RED


class RedBlackTree:
    """Ordered map with user-overridable comparator (std::less equivalent)."""

    def __init__(self, less: Optional[Callable[[Any, Any], bool]] = None):
        self._root: Optional[_Node] = None
        self._count = 0
        self._less = less or (lambda a, b: a < b)
        self._lock = threading.Lock()
        self.rotations_total = 0

    def __len__(self) -> int:
        return self._count

    # -- find ------------------------------------------------------------------
    def find(self, key: Hashable) -> Tuple[Optional[Any], bool, OpStats]:
        stats = OpStats()
        node = self._root
        less = self._less
        while node is not None:
            stats.local_ops += 1
            if less(key, node.key):
                node = node.left
            elif less(node.key, key):
                node = node.right
            else:
                stats.reads += 1
                return node.value, True, stats
        return None, False, stats

    def contains(self, key: Hashable) -> Tuple[bool, OpStats]:
        _v, found, stats = self.find(key)
        return found, stats

    # -- insert --------------------------------------------------------------------
    def insert(self, key: Hashable, value: Any) -> Tuple[bool, OpStats]:
        """Insert or overwrite; returns ``(inserted_new, stats)``."""
        stats = OpStats()
        less = self._less
        with self._lock:
            parent = None
            node = self._root
            while node is not None:
                stats.local_ops += 1
                parent = node
                if less(key, node.key):
                    node = node.left
                elif less(node.key, key):
                    node = node.right
                else:
                    stats.writes += 1
                    node.value = value
                    return False, stats
            fresh = _Node(key, value, parent)
            stats.writes += 1
            if parent is None:
                self._root = fresh
            elif less(key, parent.key):
                parent.left = fresh
            else:
                parent.right = fresh
            self._count += 1
            self._fix_insert(fresh, stats)
            return True, stats

    def _rotate_left(self, x: _Node, stats: OpStats) -> None:
        y = x.right
        x.right = y.left
        if y.left is not None:
            y.left.parent = x
        y.parent = x.parent
        if x.parent is None:
            self._root = y
        elif x is x.parent.left:
            x.parent.left = y
        else:
            x.parent.right = y
        y.left = x
        x.parent = y
        stats.relocations += 1
        self.rotations_total += 1

    def _rotate_right(self, x: _Node, stats: OpStats) -> None:
        y = x.left
        x.left = y.right
        if y.right is not None:
            y.right.parent = x
        y.parent = x.parent
        if x.parent is None:
            self._root = y
        elif x is x.parent.right:
            x.parent.right = y
        else:
            x.parent.left = y
        y.right = x
        x.parent = y
        stats.relocations += 1
        self.rotations_total += 1

    def _fix_insert(self, z: _Node, stats: OpStats) -> None:
        while z.parent is not None and z.parent.color is RED:
            stats.local_ops += 1
            gp = z.parent.parent
            if gp is None:
                break
            if z.parent is gp.left:
                uncle = gp.right
                if uncle is not None and uncle.color is RED:
                    z.parent.color = BLACK
                    uncle.color = BLACK
                    gp.color = RED
                    z = gp
                else:
                    if z is z.parent.right:
                        z = z.parent
                        self._rotate_left(z, stats)
                    z.parent.color = BLACK
                    gp.color = RED
                    self._rotate_right(gp, stats)
            else:
                uncle = gp.left
                if uncle is not None and uncle.color is RED:
                    z.parent.color = BLACK
                    uncle.color = BLACK
                    gp.color = RED
                    z = gp
                else:
                    if z is z.parent.left:
                        z = z.parent
                        self._rotate_right(z, stats)
                    z.parent.color = BLACK
                    gp.color = RED
                    self._rotate_left(gp, stats)
        if self._root is not None:
            self._root.color = BLACK

    # -- delete -----------------------------------------------------------------------
    def remove(self, key: Hashable) -> Tuple[bool, OpStats]:
        stats = OpStats()
        less = self._less
        with self._lock:
            z = self._root
            while z is not None:
                stats.local_ops += 1
                if less(key, z.key):
                    z = z.left
                elif less(z.key, key):
                    z = z.right
                else:
                    break
            if z is None:
                return False, stats
            self._delete_node(z, stats)
            self._count -= 1
            stats.writes += 1
            return True, stats

    def _transplant(self, u: _Node, v: Optional[_Node]) -> None:
        if u.parent is None:
            self._root = v
        elif u is u.parent.left:
            u.parent.left = v
        else:
            u.parent.right = v
        if v is not None:
            v.parent = u.parent

    def _minimum(self, node: _Node) -> _Node:
        while node.left is not None:
            node = node.left
        return node

    def _delete_node(self, z: _Node, stats: OpStats) -> None:
        y = z
        y_color = y.color
        if z.left is None:
            x, xp = z.right, z.parent
            self._transplant(z, z.right)
        elif z.right is None:
            x, xp = z.left, z.parent
            self._transplant(z, z.left)
        else:
            y = self._minimum(z.right)
            y_color = y.color
            x = y.right
            if y.parent is z:
                xp = y
            else:
                xp = y.parent
                self._transplant(y, y.right)
                y.right = z.right
                y.right.parent = y
            self._transplant(z, y)
            y.left = z.left
            y.left.parent = y
            y.color = z.color
        if y_color is BLACK:
            self._fix_delete(x, xp, stats)

    def _fix_delete(self, x: Optional[_Node], xp: Optional[_Node],
                    stats: OpStats) -> None:
        while x is not self._root and (x is None or x.color is BLACK):
            stats.local_ops += 1
            if xp is None:
                break
            if x is xp.left:
                w = xp.right
                if w is not None and w.color is RED:
                    w.color = BLACK
                    xp.color = RED
                    self._rotate_left(xp, stats)
                    w = xp.right
                if w is None:
                    x, xp = xp, xp.parent
                    continue
                wl_black = w.left is None or w.left.color is BLACK
                wr_black = w.right is None or w.right.color is BLACK
                if wl_black and wr_black:
                    w.color = RED
                    x, xp = xp, xp.parent
                else:
                    if wr_black:
                        if w.left is not None:
                            w.left.color = BLACK
                        w.color = RED
                        self._rotate_right(w, stats)
                        w = xp.right
                    w.color = xp.color
                    xp.color = BLACK
                    if w.right is not None:
                        w.right.color = BLACK
                    self._rotate_left(xp, stats)
                    x = self._root
                    xp = None
            else:
                w = xp.left
                if w is not None and w.color is RED:
                    w.color = BLACK
                    xp.color = RED
                    self._rotate_right(xp, stats)
                    w = xp.left
                if w is None:
                    x, xp = xp, xp.parent
                    continue
                wl_black = w.left is None or w.left.color is BLACK
                wr_black = w.right is None or w.right.color is BLACK
                if wl_black and wr_black:
                    w.color = RED
                    x, xp = xp, xp.parent
                else:
                    if wl_black:
                        if w.right is not None:
                            w.right.color = BLACK
                        w.color = RED
                        self._rotate_left(w, stats)
                        w = xp.left
                    w.color = xp.color
                    xp.color = BLACK
                    if w.left is not None:
                        w.left.color = BLACK
                    self._rotate_right(xp, stats)
                    x = self._root
                    xp = None
        if x is not None:
            x.color = BLACK

    # -- iteration -------------------------------------------------------------------
    def items(self) -> Iterator[Tuple[Hashable, Any]]:
        """In-order (sorted) iteration."""
        stack = []
        node = self._root
        while stack or node is not None:
            while node is not None:
                stack.append(node)
                node = node.left
            node = stack.pop()
            yield node.key, node.value
            node = node.right

    def keys(self) -> Iterator[Hashable]:
        for k, _v in self.items():
            yield k

    def range_items(self, lo, hi) -> Iterator[Tuple[Hashable, Any]]:
        """Items with lo <= key < hi, in order."""
        less = self._less
        for k, v in self.items():
            if less(k, lo):
                continue
            if not less(k, hi):
                break
            yield k, v

    def min_key(self) -> Optional[Hashable]:
        if self._root is None:
            return None
        return self._minimum(self._root).key

    def max_key(self) -> Optional[Hashable]:
        node = self._root
        if node is None:
            return None
        while node.right is not None:
            node = node.right
        return node.key

    # -- validation --------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Red-black properties: root black, no red-red edge, equal black height."""
        assert self._root is None or self._root.color is BLACK, "root not black"

        def walk(node) -> int:
            if node is None:
                return 1
            if node.color is RED:
                assert node.left is None or node.left.color is BLACK, "red-red edge"
                assert node.right is None or node.right.color is BLACK, "red-red edge"
            if node.left is not None:
                assert self._less(node.left.key, node.key), "BST order violated"
                assert node.left.parent is node, "parent pointer broken"
            if node.right is not None:
                assert self._less(node.key, node.right.key), "BST order violated"
                assert node.right.parent is node, "parent pointer broken"
            lh = walk(node.left)
            rh = walk(node.right)
            assert lh == rh, f"black height mismatch {lh} != {rh}"
            return lh + (0 if node.color is RED else 1)

        walk(self._root)
        assert sum(1 for _ in self.items()) == self._count, "count mismatch"
