"""Operation statistics shared by all local structures.

The counts use the Table I cost symbols: ``local_ops`` maps to L,
``reads`` to R, ``writes`` to W, ``cas_ops`` to local CAS.  ``resized``
flags that the operation triggered a capacity change (so the container
charges the N·(R+W) resize term).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["OpStats"]


@dataclass
class OpStats:
    """Work performed by one structure operation."""

    local_ops: int = 0  # pointer chases, comparisons (L)
    reads: int = 0  # entry reads (R)
    writes: int = 0  # entry writes (W)
    cas_ops: int = 0  # local CAS instructions
    relocations: int = 0  # cuckoo kicks / queue fix-ups / purges
    resized: bool = False
    resize_entries: int = 0  # entries moved by the resize, if any

    def absorb(self, other: "OpStats") -> None:
        """In-place :meth:`merge` — for hot accumulation loops."""
        self.local_ops += other.local_ops
        self.reads += other.reads
        self.writes += other.writes
        self.cas_ops += other.cas_ops
        self.relocations += other.relocations
        self.resized = self.resized or other.resized
        self.resize_entries += other.resize_entries

    def merge(self, other: "OpStats") -> "OpStats":
        return OpStats(
            local_ops=self.local_ops + other.local_ops,
            reads=self.reads + other.reads,
            writes=self.writes + other.writes,
            cas_ops=self.cas_ops + other.cas_ops,
            relocations=self.relocations + other.relocations,
            resized=self.resized or other.resized,
            resize_entries=self.resize_entries + other.resize_entries,
        )
