"""Shim for legacy editable installs (the offline environment lacks the
``wheel`` package that PEP 660 editable installs require)."""

from setuptools import setup

setup()
